#include "plinda/runtime.h"

#include <vector>

#include "gtest/gtest.h"

namespace fpdm::plinda {
namespace {

TEST(RuntimeTest, SingleProcessRunsToCompletion) {
  Runtime rt(1);
  bool ran = false;
  rt.Spawn("p", [&](ProcessContext& ctx) {
    ctx.Compute(10.0);
    ran = true;
  });
  EXPECT_TRUE(rt.Run());
  EXPECT_TRUE(ran);
  EXPECT_GT(rt.CompletionTime(), 10.0);
}

TEST(RuntimeTest, ComputeAdvancesVirtualTimeByMachineSpeed) {
  Runtime rt(2);
  rt.SetMachineSpeed(1, 2.0);
  double t_slow = 0, t_fast = 0;
  rt.SpawnOn("slow", 0, [&](ProcessContext& ctx) {
    double start = ctx.Now();
    ctx.Compute(100.0);
    t_slow = ctx.Now() - start;
  });
  rt.SpawnOn("fast", 1, [&](ProcessContext& ctx) {
    double start = ctx.Now();
    ctx.Compute(100.0);
    t_fast = ctx.Now() - start;
  });
  ASSERT_TRUE(rt.Run());
  EXPECT_DOUBLE_EQ(t_slow, 100.0);
  EXPECT_DOUBLE_EQ(t_fast, 50.0);
}

TEST(RuntimeTest, OutThenInAcrossProcesses) {
  Runtime rt(2);
  int64_t received = 0;
  rt.Spawn("producer", [&](ProcessContext& ctx) {
    ctx.Compute(5.0);
    ctx.Out(MakeTuple("data", 42));
  });
  rt.Spawn("consumer", [&](ProcessContext& ctx) {
    Tuple t;
    ctx.In(MakeTemplate(A("data"), F(ValueType::kInt)), &t);
    received = GetInt(t, 1);
  });
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(received, 42);
}

TEST(RuntimeTest, BlockingInWaitsForProducerVirtualTime) {
  Runtime rt(2);
  double consumer_done = 0;
  rt.Spawn("producer", [&](ProcessContext& ctx) {
    ctx.Compute(100.0);
    ctx.Out(MakeTuple("data", 1));
  });
  rt.Spawn("consumer", [&](ProcessContext& ctx) {
    Tuple t;
    ctx.In(MakeTemplate(A("data"), F(ValueType::kInt)), &t);
    consumer_done = ctx.Now();
  });
  ASSERT_TRUE(rt.Run());
  // The consumer cannot have the tuple before the producer computed it.
  EXPECT_GE(consumer_done, 100.0);
}

TEST(RuntimeTest, InpDoesNotBlock) {
  Runtime rt(1);
  bool found = true;
  rt.Spawn("p", [&](ProcessContext& ctx) {
    Tuple t;
    found = ctx.Inp(MakeTemplate(A("missing")), &t);
  });
  ASSERT_TRUE(rt.Run());
  EXPECT_FALSE(found);
}

TEST(RuntimeTest, RdLeavesTupleInSpace) {
  Runtime rt(1);
  int64_t a = 0, b = 0;
  rt.Spawn("p", [&](ProcessContext& ctx) {
    ctx.Out(MakeTuple("x", 9));
    Tuple t;
    ctx.Rd(MakeTemplate(A("x"), F(ValueType::kInt)), &t);
    a = GetInt(t, 1);
    ctx.In(MakeTemplate(A("x"), F(ValueType::kInt)), &t);
    b = GetInt(t, 1);
  });
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(a, 9);
  EXPECT_EQ(b, 9);
  EXPECT_TRUE(rt.space().empty());
}

TEST(RuntimeTest, MasterWorkerBagOfTasks) {
  // Classic Linda bag-of-tasks: 20 tasks, 4 workers, results collected.
  const int kTasks = 20;
  Runtime rt(5);
  std::vector<int64_t> results;
  rt.Spawn("master", [&](ProcessContext& ctx) {
    for (int i = 0; i < kTasks; ++i) ctx.Out(MakeTuple("task", i));
    for (int i = 0; i < kTasks; ++i) {
      Tuple t;
      ctx.In(MakeTemplate(A("result"), F(ValueType::kInt)), &t);
      results.push_back(GetInt(t, 1));
    }
    for (int w = 0; w < 4; ++w) ctx.Out(MakeTuple("task", -1));  // poison
  });
  for (int w = 0; w < 4; ++w) {
    rt.Spawn("worker", [&](ProcessContext& ctx) {
      for (;;) {
        Tuple t;
        ctx.In(MakeTemplate(A("task"), F(ValueType::kInt)), &t);
        int64_t id = GetInt(t, 1);
        if (id < 0) return;
        ctx.Compute(10.0);
        ctx.Out(MakeTuple("result", id * id));
      }
    });
  }
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(results.size(), static_cast<size_t>(kTasks));
  int64_t sum = 0, expect = 0;
  for (int64_t r : results) sum += r;
  for (int i = 0; i < kTasks; ++i) expect += int64_t{i} * i;
  EXPECT_EQ(sum, expect);
}

TEST(RuntimeTest, ParallelWorkersGiveSpeedup) {
  // 8 tasks of 100 units on 1 vs 4 workers: the virtual clock must show
  // near-linear speedup.
  auto run_with = [](int workers) {
    Runtime rt(workers + 1);
    rt.Spawn("master", [workers](ProcessContext& ctx) {
      for (int i = 0; i < 8; ++i) ctx.Out(MakeTuple("task", i));
      for (int i = 0; i < 8; ++i) {
        Tuple t;
        ctx.In(MakeTemplate(A("result"), F(ValueType::kInt)), &t);
      }
      for (int w = 0; w < workers; ++w) ctx.Out(MakeTuple("task", -1));
    });
    for (int w = 0; w < workers; ++w) {
      rt.Spawn("worker", [](ProcessContext& ctx) {
        for (;;) {
          Tuple t;
          ctx.In(MakeTemplate(A("task"), F(ValueType::kInt)), &t);
          if (GetInt(t, 1) < 0) return;
          ctx.Compute(100.0);
          ctx.Out(MakeTuple("result", GetInt(t, 1)));
        }
      });
    }
    EXPECT_TRUE(rt.Run());
    return rt.CompletionTime();
  };
  double t1 = run_with(1);
  double t4 = run_with(4);
  EXPECT_GT(t1 / t4, 3.0);
  EXPECT_LE(t1 / t4, 4.5);
}

TEST(RuntimeTest, DeterministicCompletionTime) {
  auto run_once = [] {
    Runtime rt(3);
    rt.Spawn("master", [](ProcessContext& ctx) {
      for (int i = 0; i < 10; ++i) ctx.Out(MakeTuple("task", i));
      for (int i = 0; i < 10; ++i) {
        Tuple t;
        ctx.In(MakeTemplate(A("result"), F(ValueType::kInt)), &t);
      }
      ctx.Out(MakeTuple("task", -1));
      ctx.Out(MakeTuple("task", -1));
    });
    for (int w = 0; w < 2; ++w) {
      rt.Spawn("worker", [w](ProcessContext& ctx) {
        for (;;) {
          Tuple t;
          ctx.In(MakeTemplate(A("task"), F(ValueType::kInt)), &t);
          if (GetInt(t, 1) < 0) return;
          ctx.Compute(10.0 * (w + 1));
          ctx.Out(MakeTuple("result", GetInt(t, 1)));
        }
      });
    }
    EXPECT_TRUE(rt.Run());
    return rt.CompletionTime();
  };
  double a = run_once();
  double b = run_once();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(RuntimeTest, DeadlockDetected) {
  Runtime rt(1);
  rt.Spawn("stuck", [](ProcessContext& ctx) {
    Tuple t;
    ctx.In(MakeTemplate(A("never")), &t);
  });
  EXPECT_FALSE(rt.Run());
  EXPECT_TRUE(rt.deadlocked());
  // The diagnostic names the blocked process and its pending template.
  EXPECT_NE(rt.diagnostic().find("stuck"), std::string::npos) << rt.diagnostic();
  EXPECT_NE(rt.diagnostic().find("\"never\""), std::string::npos)
      << rt.diagnostic();
}

TEST(RuntimeTest, DeadlockDiagnosticListsEveryBlockedProcess) {
  Runtime rt(2);
  rt.Spawn("wants-apples", [](ProcessContext& ctx) {
    Tuple t;
    ctx.In(MakeTemplate(A("apple"), F(ValueType::kInt)), &t);
  });
  rt.Spawn("wants-pears", [](ProcessContext& ctx) {
    Tuple t;
    ctx.Rd(MakeTemplate(A("pear"), F(ValueType::kString)), &t);
  });
  EXPECT_FALSE(rt.Run());
  const std::string& diag = rt.diagnostic();
  EXPECT_NE(diag.find("wants-apples"), std::string::npos) << diag;
  EXPECT_NE(diag.find("in (\"apple\", ?int)"), std::string::npos) << diag;
  EXPECT_NE(diag.find("wants-pears"), std::string::npos) << diag;
  EXPECT_NE(diag.find("rd (\"pear\", ?string)"), std::string::npos) << diag;
}

TEST(RuntimeTest, DiagnosticEmptyOnSuccess) {
  Runtime rt(1);
  rt.Spawn("p", [](ProcessContext& ctx) { ctx.Compute(1.0); });
  ASSERT_TRUE(rt.Run());
  EXPECT_TRUE(rt.diagnostic().empty());
  EXPECT_TRUE(rt.errors().empty());
}

TEST(RuntimeTest, TransactionCommitPublishesOuts) {
  Runtime rt(2);
  bool consumer_saw = false;
  double saw_at = 0;
  rt.Spawn("producer", [&](ProcessContext& ctx) {
    ctx.XStart();
    ctx.Out(MakeTuple("data", 1));
    ctx.Compute(50.0);
    ctx.XCommit();
  });
  rt.Spawn("consumer", [&](ProcessContext& ctx) {
    Tuple t;
    ctx.In(MakeTemplate(A("data"), F(ValueType::kInt)), &t);
    consumer_saw = true;
    saw_at = ctx.Now();
  });
  ASSERT_TRUE(rt.Run());
  EXPECT_TRUE(consumer_saw);
  // Visibility only after commit, which is after the 50-unit compute.
  EXPECT_GE(saw_at, 50.0);
}

TEST(RuntimeTest, TransactionSeesOwnOuts) {
  Runtime rt(1);
  bool found = false;
  rt.Spawn("p", [&](ProcessContext& ctx) {
    ctx.XStart();
    ctx.Out(MakeTuple("mine", 5));
    Tuple t;
    found = ctx.Inp(MakeTemplate(A("mine"), F(ValueType::kInt)), &t);
    ctx.XCommit();
  });
  ASSERT_TRUE(rt.Run());
  EXPECT_TRUE(found);
  EXPECT_TRUE(rt.space().empty());  // ined before commit: never published
}

TEST(RuntimeTest, ContinuationCommitAndRecover) {
  Runtime rt(1);
  bool first_recover = true;
  Tuple recovered;
  rt.Spawn("p", [&](ProcessContext& ctx) {
    Tuple cont;
    first_recover = ctx.XRecover(&cont);
    ctx.XStart();
    ctx.XCommit(MakeTuple("state", 7));
    ASSERT_TRUE(ctx.XRecover(&recovered));
  });
  ASSERT_TRUE(rt.Run());
  EXPECT_FALSE(first_recover);  // nothing committed yet on first call
  EXPECT_EQ(GetInt(recovered, 1), 7);
}

TEST(RuntimeTest, FailureKillsAndRespawnsProcess) {
  Runtime rt(2);
  rt.ScheduleFailure(/*machine=*/1, /*time=*/50.0);
  int incarnations_seen = 0;
  bool finished = false;
  rt.SpawnOn("victim", 1, [&](ProcessContext& ctx) {
    ++incarnations_seen;
    ctx.Compute(100.0);  // straddles the failure at t=50
    finished = true;
  });
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(incarnations_seen, 2);  // killed once, respawned on machine 0
  EXPECT_TRUE(finished);
  EXPECT_EQ(rt.stats().processes_killed, 1u);
  EXPECT_EQ(rt.stats().processes_respawned, 1u);
}

TEST(RuntimeTest, FailureAbortsTransactionAndRestoresTuples) {
  // The PLinda guarantee: a failed execution leaves the same final state as
  // a failure-free one. The victim ins the task inside a transaction, dies
  // before commit; the task must return to tuple space for its respawn.
  Runtime rt(2);
  rt.ScheduleFailure(1, 30.0);
  int attempts = 0;
  int64_t result = 0;
  rt.SpawnOn("worker", 1, [&](ProcessContext& ctx) {
    ++attempts;
    for (;;) {
      Tuple t;
      ctx.XStart();
      if (!ctx.Inp(MakeTemplate(A("task"), F(ValueType::kInt)), &t)) {
        ctx.XCommit();
        return;
      }
      ctx.Compute(100.0);  // dies here on the first attempt
      ctx.Out(MakeTuple("result", GetInt(t, 1) * 2));
      ctx.XCommit();
    }
  });
  rt.space().Out(MakeTuple("task", 21));
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(rt.stats().transactions_aborted, 1u);
  Tuple t;
  ASSERT_TRUE(rt.space().TryIn(MakeTemplate(A("result"), F(ValueType::kInt)), &t));
  result = GetInt(t, 1);
  EXPECT_EQ(result, 42);
}

TEST(RuntimeTest, RecoverContinuationAfterFailure) {
  // Continuation committing: the process saves progress via XCommit(state)
  // and its respawn resumes from there instead of redoing finished work.
  Runtime rt(2);
  rt.ScheduleFailure(1, 100.0);
  std::vector<int64_t> attempted_steps;
  rt.SpawnOn("p", 1, [&](ProcessContext& ctx) {
    int64_t step = 0;
    Tuple cont;
    if (ctx.XRecover(&cont)) step = GetInt(cont, 0) + 1;
    for (; step < 4; ++step) {
      ctx.XStart();
      attempted_steps.push_back(step);
      ctx.Compute(40.0);  // the failure at t=100 lands inside step 2
      ctx.XCommit(MakeTuple(step));
    }
  });
  ASSERT_TRUE(rt.Run());
  // Steps 0,1 commit before t=100 (spawn delay + 2*40 + overhead); step 2 is
  // lost to the failure and re-attempted after XRecover, then step 3 runs.
  std::vector<int64_t> expected = {0, 1, 2, 2, 3};
  EXPECT_EQ(attempted_steps, expected);
  EXPECT_EQ(rt.stats().processes_respawned, 1u);
}

TEST(RuntimeTest, FailedMachineNotUsedForSpawns) {
  Runtime rt(2);
  rt.ScheduleFailure(0, 10.0);
  int machine_of_child = -1;
  rt.SpawnOn("parent", 1, [&](ProcessContext& ctx) {
    ctx.Compute(50.0);  // past the failure of machine 0
    ctx.Spawn("child", [&](ProcessContext& cctx) {
      machine_of_child = cctx.machine();
    });
  });
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(machine_of_child, 1);
}

TEST(RuntimeTest, RecoveryBringsMachineBack) {
  Runtime rt(2);
  rt.ScheduleFailure(1, 10.0);
  rt.ScheduleRecovery(1, 20.0);
  // Victim is killed at t=10; no other machine? machine 0 is up, so respawn
  // goes there. This test exercises recovery for future placement instead:
  // a process spawned after t=20 may land on machine 1 again.
  int child_machine = -1;
  rt.SpawnOn("parent", 0, [&](ProcessContext& ctx) {
    ctx.Compute(100.0);
    ctx.Spawn("child", [&](ProcessContext& cctx) {
      child_machine = cctx.machine();
      cctx.Compute(1.0);
    });
  });
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(child_machine, 1);  // least-loaded up machine after recovery
}

TEST(RuntimeTest, SpawnFromProcess) {
  Runtime rt(2);
  int64_t got = 0;
  rt.Spawn("master", [&](ProcessContext& ctx) {
    ctx.Spawn("child", [](ProcessContext& cctx) {
      cctx.Compute(5.0);
      cctx.Out(MakeTuple("from_child", 99));
    });
    Tuple t;
    ctx.In(MakeTemplate(A("from_child"), F(ValueType::kInt)), &t);
    got = GetInt(t, 1);
  });
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(got, 99);
}

TEST(RuntimeTest, StatsAreCounted) {
  Runtime rt(1);
  rt.Spawn("p", [](ProcessContext& ctx) {
    ctx.XStart();
    ctx.Out(MakeTuple("a", 1));
    ctx.XCommit();
    Tuple t;
    ctx.In(MakeTemplate(A("a"), F(ValueType::kInt)), &t);
    ctx.Compute(3.0);
  });
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(rt.stats().tuple_ops, 2u);
  EXPECT_EQ(rt.stats().transactions_committed, 1u);
  EXPECT_DOUBLE_EQ(rt.stats().total_work, 3.0);
}

TEST(RuntimeTraceTest, RecordsLifecycleEvents) {
  Runtime rt(2);
  rt.ScheduleFailure(1, 50.0);
  rt.SpawnOn("victim", 1, [](ProcessContext& ctx) { ctx.Compute(100.0); });
  ASSERT_TRUE(rt.Run());
  std::vector<TraceEvent::Kind> kinds;
  for (const TraceEvent& event : rt.trace()) kinds.push_back(event.kind);
  // Spawn -> machine failure -> kill -> respawn -> done, in that order.
  std::vector<TraceEvent::Kind> expected = {
      TraceEvent::Kind::kSpawned, TraceEvent::Kind::kMachineFailed,
      TraceEvent::Kind::kKilled, TraceEvent::Kind::kRespawned,
      TraceEvent::Kind::kDone};
  EXPECT_EQ(kinds, expected);
  // Events are stamped in nondecreasing virtual time.
  for (size_t i = 1; i < rt.trace().size(); ++i) {
    EXPECT_GE(rt.trace()[i].time, rt.trace()[i - 1].time);
  }
  EXPECT_EQ(rt.trace()[2].process, "victim");
  EXPECT_DOUBLE_EQ(rt.trace()[1].time, 50.0);
}

TEST(RuntimeTraceTest, ToStringReadable) {
  Runtime rt(1);
  rt.Spawn("p", [](ProcessContext& ctx) { ctx.Compute(1.0); });
  ASSERT_TRUE(rt.Run());
  ASSERT_GE(rt.trace().size(), 2u);
  const std::string line = ToString(rt.trace().front());
  EXPECT_NE(line.find("SPAWNED"), std::string::npos);
  EXPECT_NE(line.find("p"), std::string::npos);
}

TEST(RuntimeTraceTest, CanBeDisabled) {
  Runtime rt(1);
  rt.set_trace_enabled(false);
  rt.Spawn("p", [](ProcessContext& ctx) { ctx.Compute(1.0); });
  ASSERT_TRUE(rt.Run());
  EXPECT_TRUE(rt.trace().empty());
}

}  // namespace
}  // namespace fpdm::plinda
