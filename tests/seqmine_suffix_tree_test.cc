#include "seqmine/suffix_tree.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

namespace fpdm::seqmine {
namespace {

// Naive reference: substring containment and per-sequence counting by scan.
bool NaiveContains(const std::vector<std::string>& seqs,
                   const std::string& s) {
  for (const auto& seq : seqs) {
    if (seq.find(s) != std::string::npos) return true;
  }
  return false;
}

int NaiveSeqCount(const std::vector<std::string>& seqs, const std::string& s) {
  int count = 0;
  for (const auto& seq : seqs) {
    count += seq.find(s) != std::string::npos ? 1 : 0;
  }
  return count;
}

std::set<char> NaiveExtensions(const std::vector<std::string>& seqs,
                               const std::string& s) {
  std::set<char> ext;
  for (const auto& seq : seqs) {
    if (s.empty()) {
      for (char c : seq) ext.insert(c);
      continue;
    }
    size_t pos = seq.find(s);
    while (pos != std::string::npos) {
      if (pos + s.size() < seq.size()) ext.insert(seq[pos + s.size()]);
      pos = seq.find(s, pos + 1);
    }
  }
  return ext;
}

TEST(SuffixTreeTest, ContainsBasic) {
  GeneralizedSuffixTree gst({"banana"});
  EXPECT_TRUE(gst.Contains("banana"));
  EXPECT_TRUE(gst.Contains("anan"));
  EXPECT_TRUE(gst.Contains("na"));
  EXPECT_TRUE(gst.Contains(""));
  EXPECT_FALSE(gst.Contains("bananas"));
  EXPECT_FALSE(gst.Contains("x"));
  EXPECT_FALSE(gst.Contains("ab"));
}

TEST(SuffixTreeTest, MultipleSequences) {
  GeneralizedSuffixTree gst({"abcab", "bcada"});
  EXPECT_TRUE(gst.Contains("abcab"));
  EXPECT_TRUE(gst.Contains("bcada"));
  EXPECT_TRUE(gst.Contains("cad"));
  // Substrings must not cross sequence boundaries.
  EXPECT_FALSE(gst.Contains("abb"));
  EXPECT_FALSE(gst.Contains("abbc"));
}

TEST(SuffixTreeTest, SequenceCount) {
  GeneralizedSuffixTree gst({"abab", "abba", "bbbb"});
  EXPECT_EQ(gst.SequenceCount("ab"), 2);
  EXPECT_EQ(gst.SequenceCount("bb"), 2);
  EXPECT_EQ(gst.SequenceCount("b"), 3);
  EXPECT_EQ(gst.SequenceCount("abab"), 1);
  EXPECT_EQ(gst.SequenceCount("zz"), 0);
}

TEST(SuffixTreeTest, RepeatedOccurrencesCountOnce) {
  GeneralizedSuffixTree gst({"aaaa", "bbbb"});
  EXPECT_EQ(gst.SequenceCount("aa"), 1);  // three occurrences, one sequence
}

TEST(SuffixTreeTest, ExtensionsOfEmptyAreAllLetters) {
  GeneralizedSuffixTree gst({"abc", "cde"});
  std::vector<char> ext = gst.Extensions("");
  std::set<char> got(ext.begin(), ext.end());
  EXPECT_EQ(got, (std::set<char>{'a', 'b', 'c', 'd', 'e'}));
}

TEST(SuffixTreeTest, ExtensionsMidPattern) {
  GeneralizedSuffixTree gst({"abcd", "abce", "abx"});
  std::vector<char> ext = gst.Extensions("abc");
  std::set<char> got(ext.begin(), ext.end());
  EXPECT_EQ(got, (std::set<char>{'d', 'e'}));
  ext = gst.Extensions("ab");
  got = std::set<char>(ext.begin(), ext.end());
  EXPECT_EQ(got, (std::set<char>{'c', 'x'}));
}

TEST(SuffixTreeTest, ExtensionsAtSequenceEndAreEmpty) {
  GeneralizedSuffixTree gst({"abc"});
  EXPECT_TRUE(gst.Extensions("abc").empty());
  EXPECT_TRUE(gst.Extensions("zzz").empty());
}

TEST(SuffixTreeTest, RandomizedAgainstNaive) {
  util::Rng rng(7777);
  for (int round = 0; round < 20; ++round) {
    // Small alphabet to force repeated structure (the hard case for
    // Ukkonen's suffix links).
    std::vector<std::string> seqs;
    const int num_seqs = static_cast<int>(rng.NextInt(1, 4));
    for (int i = 0; i < num_seqs; ++i) {
      const int len = static_cast<int>(rng.NextInt(1, 40));
      std::string s;
      for (int j = 0; j < len; ++j) {
        s.push_back(static_cast<char>('a' + rng.NextBounded(3)));
      }
      seqs.push_back(s);
    }
    GeneralizedSuffixTree gst(seqs);
    for (int q = 0; q < 60; ++q) {
      const int len = static_cast<int>(rng.NextInt(1, 6));
      std::string query;
      for (int j = 0; j < len; ++j) {
        query.push_back(static_cast<char>('a' + rng.NextBounded(3)));
      }
      ASSERT_EQ(gst.Contains(query), NaiveContains(seqs, query))
          << "round " << round << " query " << query;
      ASSERT_EQ(gst.SequenceCount(query), NaiveSeqCount(seqs, query))
          << "round " << round << " query " << query;
      std::vector<char> ext = gst.Extensions(query);
      std::set<char> got(ext.begin(), ext.end());
      ASSERT_EQ(got, NaiveExtensions(seqs, query))
          << "round " << round << " query " << query;
    }
  }
}

TEST(SuffixTreeTest, LinearNodeCount) {
  // A suffix tree has at most 2n internal+leaf nodes; the naive trie would
  // have quadratically many. This guards against accidental de-compression.
  std::string s;
  util::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    s.push_back(static_cast<char>('a' + rng.NextBounded(4)));
  }
  GeneralizedSuffixTree gst({s});
  EXPECT_LE(gst.node_count(), 2 * (s.size() + 1) + 1);
}

TEST(SuffixTreeTest, MaximalSegmentsSimple) {
  // "abcde" shared by both sequences; every shorter shared segment is a
  // substring of it.
  GeneralizedSuffixTree gst({"xxabcdeyy", "zzabcdeww"});
  std::vector<std::string> maximal = gst.MaximalSegments(2, 3);
  ASSERT_FALSE(maximal.empty());
  EXPECT_EQ(maximal[0], "abcde");
  for (const std::string& seg : maximal) {
    EXPECT_GE(gst.SequenceCount(seg), 2);
    EXPECT_GE(seg.size(), 3u);
  }
}

TEST(SuffixTreeTest, MaximalSegmentsRespectMinSeqs) {
  GeneralizedSuffixTree gst({"abcabc", "defdef", "ghighi"});
  // No segment of length >= 2 is shared by two sequences.
  EXPECT_TRUE(gst.MaximalSegments(2, 2).empty());
}

TEST(SuffixTreeTest, MaximalSegmentsAreMaximal) {
  GeneralizedSuffixTree gst({"qabcq", "wabcw", "eabce"});
  std::vector<std::string> maximal = gst.MaximalSegments(3, 2);
  // "abc" occurs in all three; no extension of it does.
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal[0], "abc");
}

TEST(SuffixTreeTest, SegmentEndingAtSequenceEnd) {
  // The shared segment sits flush against sequence ends (sentinel edges).
  GeneralizedSuffixTree gst({"xxtail", "yytail"});
  std::vector<std::string> maximal = gst.MaximalSegments(2, 3);
  ASSERT_FALSE(maximal.empty());
  EXPECT_EQ(maximal[0], "tail");
}

}  // namespace
}  // namespace fpdm::seqmine
