// Tests for the thread-safe sharded tuple space and the kRealParallel
// runtime backend. This file is part of fpdm_plinda_tests, so every tier-1
// run also executes it under ThreadSanitizer (see run_tsan.cmake): the
// concurrent stress tests double as the race detectors for the sharded
// space and the real-mode op paths.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "plinda/runtime.h"
#include "plinda/sharded_space.h"
#include "plinda/tuple.h"

namespace fpdm::plinda {
namespace {

Template WorkTemplate() {
  return MakeTemplate(A("work"), F(ValueType::kInt));
}

// Formal string first field: forces the cross-shard slow path.
Template AnyPairTemplate() {
  return MakeTemplate(F(ValueType::kString), F(ValueType::kInt));
}

TEST(ShardedSpaceTest, FifoWithinBucket) {
  ShardedTupleSpace space;
  space.Out(MakeTuple("work", int64_t{1}));
  space.Out(MakeTuple("work", int64_t{2}));
  Tuple t;
  ASSERT_TRUE(space.TryIn(WorkTemplate(), &t));
  EXPECT_EQ(GetInt(t, 1), 1);
  ASSERT_TRUE(space.TryIn(WorkTemplate(), &t));
  EXPECT_EQ(GetInt(t, 1), 2);
  EXPECT_FALSE(space.TryIn(WorkTemplate(), &t));
  EXPECT_EQ(space.size(), 0u);
}

TEST(ShardedSpaceTest, CrossShardMatchingPicksGloballyOldest) {
  ShardedTupleSpace space;
  space.Out(MakeTuple("alpha", int64_t{1}));  // oldest, some shard
  space.Out(MakeTuple("beta", int64_t{2}));   // newer, likely another shard
  Tuple t;
  ASSERT_TRUE(space.TryRd(AnyPairTemplate(), &t));
  EXPECT_EQ(GetString(t, 0), "alpha");
  ASSERT_TRUE(space.TryIn(AnyPairTemplate(), &t));
  EXPECT_EQ(GetString(t, 0), "alpha");
  ASSERT_TRUE(space.TryIn(AnyPairTemplate(), &t));
  EXPECT_EQ(GetString(t, 0), "beta");
  EXPECT_EQ(space.size(), 0u);
}

TEST(ShardedSpaceTest, TryRdDoesNotRemove) {
  ShardedTupleSpace space;
  space.Out(MakeTuple("work", int64_t{7}));
  Tuple t;
  ASSERT_TRUE(space.TryRd(WorkTemplate(), &t));
  EXPECT_EQ(space.size(), 1u);
  ASSERT_TRUE(space.TryIn(WorkTemplate(), &t));
  EXPECT_EQ(space.size(), 0u);
}

TEST(ShardedSpaceTest, CloseWakesBlockedWaiters) {
  ShardedTupleSpace space;
  std::atomic<int> woken{0};
  std::vector<std::thread> waiters;
  // One waiter on the single-shard path, one on the cross-shard path.
  waiters.emplace_back([&] {
    Tuple t;
    EXPECT_FALSE(space.WaitIn(WorkTemplate(), &t, /*remove=*/true));
    ++woken;
  });
  waiters.emplace_back([&] {
    Tuple t;
    EXPECT_FALSE(space.WaitIn(AnyPairTemplate(), &t, /*remove=*/false));
    ++woken;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  space.Close();
  for (auto& thread : waiters) thread.join();
  EXPECT_EQ(woken.load(), 2);
  // After close, blocking calls return false immediately.
  Tuple t;
  EXPECT_FALSE(space.WaitIn(WorkTemplate(), &t, true));
}

TEST(ShardedSpaceTest, TakeAllInOrderPreservesOutOrder) {
  ShardedTupleSpace space;
  for (int i = 0; i < 10; ++i) {
    space.Out(MakeTuple("k" + std::to_string(i % 3), int64_t{i}));
  }
  std::vector<Tuple> all = space.TakeAllInOrder();
  ASSERT_EQ(all.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(GetInt(all[static_cast<size_t>(i)], 1), i);
  EXPECT_EQ(space.size(), 0u);
}

// Concurrent stress: producers publish into many buckets while consumers
// drain through both the single-shard path (actual first field) and the
// cross-shard path (formal string first field). Every tuple must be
// consumed exactly once.
TEST(ShardedSpaceTest, ConcurrentProducersAndMixedConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumersFast = 3;
  constexpr int kConsumersSlow = 2;
  constexpr int kPerProducer = 500;
  constexpr int kTotal = kProducers * kPerProducer;

  ShardedTupleSpace space;
  std::atomic<int> consumed{0};
  std::atomic<long long> value_sum{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int j = 0; j < kPerProducer; ++j) {
        const int value = p * kPerProducer + j;
        // Several distinct string keys spread the load across shards.
        space.Out(MakeTuple("work" + std::to_string(value % 7),
                            int64_t{value}));
      }
    });
  }
  auto consume = [&](const Template& tmpl) {
    Tuple t;
    while (space.WaitIn(tmpl, &t, /*remove=*/true)) {
      value_sum.fetch_add(GetInt(t, 1));
      ++consumed;
    }
  };
  for (int c = 0; c < kConsumersFast; ++c) {
    const std::string key = "work" + std::to_string(c % 7);
    threads.emplace_back(
        [&, key] { consume(MakeTemplate(A(key), F(ValueType::kInt))); });
  }
  for (int c = 0; c < kConsumersSlow; ++c) {
    threads.emplace_back([&] { consume(AnyPairTemplate()); });
  }

  // The slow-path consumers can drain every bucket, so all tuples get
  // consumed; close once the space is empty to release the waiters.
  while (consumed.load() < kTotal) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  space.Close();
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(consumed.load(), kTotal);
  EXPECT_EQ(value_sum.load(),
            static_cast<long long>(kTotal) * (kTotal - 1) / 2);
  EXPECT_EQ(space.size(), 0u);
  EXPECT_GT(space.cross_shard_ops(), 0u);
}

// --- kRealParallel runtime backend ---------------------------------------

RuntimeOptions RealOptions() {
  RuntimeOptions options;
  options.mode = ExecutionMode::kRealParallel;
  return options;
}

Template TaskTemplate() {
  return MakeTemplate(A("task"), F(ValueType::kInt));
}

TEST(RealParallelRuntimeTest, WorkersDrainTasksThroughTransactions) {
  constexpr int kWorkers = 4;
  constexpr int kTasks = 200;
  Runtime runtime(kWorkers, RealOptions());
  for (int i = 0; i < kTasks; ++i) {
    runtime.space().Out(MakeTuple("task", int64_t{i}));
  }
  for (int w = 0; w < kWorkers; ++w) {
    runtime.space().Out(MakeTuple("task", int64_t{-1}));
  }
  for (int w = 0; w < kWorkers; ++w) {
    runtime.Spawn("worker-" + std::to_string(w), [](ProcessContext& ctx) {
      for (;;) {
        ctx.XStart();
        Tuple task;
        ctx.In(TaskTemplate(), &task);
        const int64_t i = GetInt(task, 1);
        if (i < 0) {
          ctx.XCommit();
          return;
        }
        ctx.Compute(1.0);
        ctx.Out(MakeTuple("done", i, i * 2));
        ctx.XCommit();
      }
    });
  }
  ASSERT_TRUE(runtime.Run()) << runtime.diagnostic();
  EXPECT_FALSE(runtime.deadlocked());
  EXPECT_GE(runtime.wall_time(), 0.0);
  EXPECT_EQ(runtime.CompletionTime(), runtime.wall_time());
  Template done = MakeTemplate(A("done"), F(ValueType::kInt),
                               F(ValueType::kInt));
  EXPECT_EQ(runtime.space().CountMatches(done), static_cast<size_t>(kTasks));
  EXPECT_EQ(runtime.stats().transactions_committed,
            static_cast<uint64_t>(kTasks + kWorkers));
  EXPECT_EQ(runtime.stats().total_work, static_cast<double>(kTasks));
}

TEST(RealParallelRuntimeTest, DeadlockIsDetectedAndDiagnosed) {
  Runtime runtime(2, RealOptions());
  runtime.Spawn("stuck-a", [](ProcessContext& ctx) {
    Tuple t;
    ctx.In(MakeTemplate(A("never"), F(ValueType::kInt)), &t);
  });
  runtime.Spawn("stuck-b", [](ProcessContext& ctx) {
    Tuple t;
    ctx.Rd(MakeTemplate(F(ValueType::kString)), &t);  // cross-shard waiter
  });
  EXPECT_FALSE(runtime.Run());
  EXPECT_TRUE(runtime.deadlocked());
  EXPECT_NE(runtime.diagnostic().find("stuck-a"), std::string::npos);
  EXPECT_NE(runtime.diagnostic().find("blocked"), std::string::npos);
  EXPECT_EQ(runtime.stats().processes_killed, 2u);
}

TEST(RealParallelRuntimeTest, FaultInjectionIsRejected) {
  Runtime runtime(2, RealOptions());
  runtime.ScheduleFailure(1, 5.0);
  runtime.Spawn("worker", [](ProcessContext& ctx) { ctx.Compute(1.0); });
  EXPECT_FALSE(runtime.Run());
  ASSERT_EQ(runtime.errors().size(), 1u);
  EXPECT_EQ(runtime.errors()[0].code,
            RuntimeError::Code::kFaultInjectionUnsupported);
  EXPECT_NE(runtime.diagnostic().find("fault injection"), std::string::npos);
}

TEST(RealParallelRuntimeTest, ProtocolErrorAbortsAndRestoresTransactionIns) {
  Runtime runtime(2, RealOptions());
  runtime.space().Out(MakeTuple("abortable", int64_t{42}));
  runtime.Spawn("aborter", [](ProcessContext& ctx) {
    ctx.XStart();
    Tuple t;
    ctx.In(MakeTemplate(A("abortable"), F(ValueType::kInt)), &t);
    ctx.XStart();  // nested: protocol error unwinds and aborts the txn
  });
  EXPECT_FALSE(runtime.Run());
  ASSERT_EQ(runtime.errors().size(), 1u);
  EXPECT_EQ(runtime.errors()[0].code, RuntimeError::Code::kNestedXStart);
  // The abort restored the removed tuple.
  EXPECT_EQ(runtime.space().CountMatches(
                MakeTemplate(A("abortable"), F(ValueType::kInt))),
            1u);
  EXPECT_EQ(runtime.stats().transactions_aborted, 1u);
}

TEST(RealParallelRuntimeTest, ContinuationsRoundTrip) {
  Runtime runtime(1, RealOptions());
  std::atomic<bool> recovered{false};
  runtime.Spawn("committer", [&](ProcessContext& ctx) {
    Tuple ignored;
    EXPECT_FALSE(ctx.XRecover(&ignored));  // fresh process: no continuation
    ctx.XStart();
    ctx.XCommit(MakeTuple("state", int64_t{7}));
    Tuple cont;
    ASSERT_TRUE(ctx.XRecover(&cont));
    EXPECT_EQ(GetString(cont, 0), "state");
    EXPECT_EQ(GetInt(cont, 1), 7);
    recovered = true;
  });
  ASSERT_TRUE(runtime.Run()) << runtime.diagnostic();
  EXPECT_TRUE(recovered.load());
}

TEST(RealParallelRuntimeTest, CrossShardBlockingRdSeesLatePublish) {
  Runtime runtime(2, RealOptions());
  std::atomic<bool> got{false};
  runtime.Spawn("reader", [&](ProcessContext& ctx) {
    Tuple t;
    ctx.Rd(MakeTemplate(F(ValueType::kString), F(ValueType::kInt)), &t);
    EXPECT_EQ(GetString(t, 0), "late");
    got = true;
  });
  runtime.Spawn("writer", [](ProcessContext& ctx) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ctx.Out(MakeTuple("late", int64_t{1}));
  });
  ASSERT_TRUE(runtime.Run()) << runtime.diagnostic();
  EXPECT_TRUE(got.load());
  EXPECT_GT(runtime.stats().cross_shard_ops, 0u);
}

TEST(RealParallelRuntimeTest, DynamicSpawnRunsImmediately) {
  Runtime runtime(2, RealOptions());
  runtime.Spawn("parent", [](ProcessContext& ctx) {
    ctx.Spawn("child", [](ProcessContext& cctx) {
      cctx.Out(MakeTuple("child_done", int64_t{1}));
    });
    Tuple t;
    ctx.In(MakeTemplate(A("child_done"), F(ValueType::kInt)), &t);
  });
  ASSERT_TRUE(runtime.Run()) << runtime.diagnostic();
}

// Transactions committing and aborting concurrently: workers drain tasks
// while aborters repeatedly die mid-transaction; every abortable tuple must
// be restored and every task still processed exactly once.
TEST(RealParallelRuntimeTest, ConcurrentCommitsAndAborts) {
  constexpr int kWorkers = 3;
  constexpr int kAborters = 2;
  constexpr int kTasks = 120;
  Runtime runtime(kWorkers + kAborters, RealOptions());
  for (int i = 0; i < kTasks; ++i) {
    runtime.space().Out(MakeTuple("task", int64_t{i}));
  }
  for (int w = 0; w < kWorkers; ++w) {
    runtime.space().Out(MakeTuple("task", int64_t{-1}));
  }
  for (int a = 0; a < kAborters; ++a) {
    runtime.space().Out(MakeTuple("abortable", int64_t{a}));
  }
  for (int w = 0; w < kWorkers; ++w) {
    runtime.Spawn("worker-" + std::to_string(w), [](ProcessContext& ctx) {
      for (;;) {
        ctx.XStart();
        Tuple task;
        ctx.In(TaskTemplate(), &task);
        if (GetInt(task, 1) < 0) {
          ctx.XCommit();
          return;
        }
        ctx.Out(MakeTuple("done", GetInt(task, 1)));
        ctx.XCommit();
      }
    });
  }
  for (int a = 0; a < kAborters; ++a) {
    runtime.Spawn("aborter-" + std::to_string(a), [](ProcessContext& ctx) {
      ctx.XStart();
      Tuple t;
      ctx.In(MakeTemplate(A("abortable"), F(ValueType::kInt)), &t);
      ctx.XStart();  // protocol error: transaction aborts, tuple restored
    });
  }
  EXPECT_FALSE(runtime.Run());  // aborters report protocol errors
  EXPECT_EQ(runtime.errors().size(), static_cast<size_t>(kAborters));
  EXPECT_EQ(runtime.space().CountMatches(
                MakeTemplate(A("done"), F(ValueType::kInt))),
            static_cast<size_t>(kTasks));
  EXPECT_EQ(runtime.space().CountMatches(
                MakeTemplate(A("abortable"), F(ValueType::kInt))),
            static_cast<size_t>(kAborters));
  EXPECT_EQ(runtime.stats().transactions_aborted,
            static_cast<uint64_t>(kAborters));
}

}  // namespace
}  // namespace fpdm::plinda
