// Chaos soak: the paper's free-parallelism claim (Chapter 7) is that a
// PLinda mining program survives workstation churn — and with the §2.4.6
// server checkpoint, tuple-space-server crashes — without changing its
// answer. For a sweep of seeded fault plans, parallel apriori (E-tree) and
// parallel NyuMiner-CV must produce bit-identical results to the
// failure-free run.

#include <cstdint>
#include <string>

#include "arm/problem.h"
#include "classify/parallel.h"
#include "core/parallel.h"
#include "data/benchmarks.h"
#include "gtest/gtest.h"
#include "plinda/chaos.h"

namespace fpdm {
namespace {

struct SweepTotals {
  uint64_t respawns = 0;
  uint64_t aborts = 0;
  uint64_t server_failures = 0;
  int plans_with_server_crash = 0;

  void Accumulate(const plinda::RuntimeStats& stats,
                  const plinda::FaultPlan& plan) {
    respawns += stats.processes_respawned;
    aborts += stats.transactions_aborted;
    server_failures += stats.server_failures;
    if (plan.server_crashes() > 0) ++plans_with_server_crash;
  }

  // The acceptance bar for a soak sweep: every interesting failure path
  // actually ran, including a tuple-space-server crash mid-run.
  void ExpectInteresting() const {
    EXPECT_GE(respawns, 1u) << "no process was ever killed and respawned";
    EXPECT_GE(aborts, 1u) << "no transaction was ever rolled back";
    EXPECT_GE(plans_with_server_crash, 1) << "no plan scheduled a server crash";
    EXPECT_GE(server_failures, 1u) << "no server crash fired mid-run";
  }
};

// Fault pressure scaled to the failure-free completion time `t`: faults land
// in the first ~60% of the run, machines fail a few times per run, and the
// server crashes in most plans. Machine 0 stays spared (the masters run
// there and do not commit continuations; see plinda/chaos.h).
plinda::ChaosOptions ScaledChaos(uint64_t seed, double t) {
  plinda::ChaosOptions chaos;
  chaos.seed = seed;
  chaos.start_time = 0.05 * t;
  chaos.horizon = 0.6 * t;
  chaos.machine_mttf = t / 3;
  chaos.machine_mttr = t / 10;
  chaos.server_mttf = 0.3 * t;
  chaos.server_mttr = t / 20;
  chaos.max_server_failures = 1;
  return chaos;
}

TEST(ChaosSoakTest, AprioriMiningBitIdenticalUnderFaults) {
  arm::BasketConfig config;
  config.num_transactions = 120;
  config.num_items = 9;
  config.patterns = {{{0, 3, 6}, 0.45}, {{1, 5}, 0.5}};
  arm::TransactionDb db = arm::GenerateBaskets(config);
  arm::ItemsetProblem problem(db, 20);

  core::ParallelOptions base;
  base.strategy = core::Strategy::kLoadBalanced;
  base.num_workers = 4;
  core::ParallelResult baseline = core::MineParallel(problem, base);
  ASSERT_TRUE(baseline.ok);
  ASSERT_FALSE(baseline.mining.good_patterns.empty());

  SweepTotals totals;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    core::ParallelOptions opts = base;
    opts.fault_plan = plinda::GenerateFaultPlan(
        base.num_workers, ScaledChaos(seed, baseline.completion_time));
    core::ParallelResult chaotic = core::MineParallel(problem, opts);
    ASSERT_TRUE(chaotic.ok)
        << "seed " << seed << ", plan:\n"
        << ToString(opts.fault_plan) << chaotic.stats.processes_respawned;

    // Bit-identical mining result: same patterns, same goodness values.
    const auto& expected = baseline.mining.good_patterns;
    const auto& actual = chaotic.mining.good_patterns;
    ASSERT_EQ(actual.size(), expected.size()) << "seed " << seed;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].pattern.key, expected[i].pattern.key)
          << "seed " << seed << ", pattern " << i;
      EXPECT_EQ(actual[i].goodness, expected[i].goodness)
          << "seed " << seed << ", pattern " << i;
    }
    totals.Accumulate(chaotic.stats, opts.fault_plan);
  }
  totals.ExpectInteresting();
}

TEST(ChaosSoakTest, NyuMinerCvBitIdenticalUnderFaults) {
  data::BenchmarkSpec spec = data::SpecByName("diabetes");
  spec.rows = 300;
  classify::Dataset data = data::GenerateBenchmark(spec);
  classify::NyuMinerOptions options;
  options.cv_folds = 4;
  options.seed = 123;

  classify::ParallelExecOptions base;
  base.num_workers = 3;
  base.seconds_per_work_unit = 1e-3;
  classify::ParallelTreeResult baseline =
      classify::ParallelNyuMinerCV(data, data.AllRows(), options, base);
  ASSERT_TRUE(baseline.ok);
  const std::string expected_tree = baseline.tree.Serialize();

  SweepTotals totals;
  for (uint64_t seed = 101; seed <= 110; ++seed) {
    classify::ParallelExecOptions exec = base;
    exec.fault_plan = plinda::GenerateFaultPlan(
        base.num_workers, ScaledChaos(seed, baseline.completion_time));
    classify::ParallelTreeResult chaotic =
        classify::ParallelNyuMinerCV(data, data.AllRows(), options, exec);
    ASSERT_TRUE(chaotic.ok) << "seed " << seed << ", plan:\n"
                            << ToString(exec.fault_plan);
    // Bit-identical tree. (Completion time may go either way: an aborted
    // task returns to tuple space where an idle worker can steal it, so a
    // fault can even break an unlucky task assignment and finish sooner.)
    EXPECT_EQ(chaotic.tree.Serialize(), expected_tree) << "seed " << seed;
    totals.Accumulate(chaotic.stats, exec.fault_plan);
  }
  totals.ExpectInteresting();
}

}  // namespace
}  // namespace fpdm
