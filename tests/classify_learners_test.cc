#include <vector>

#include "classify/c45.h"
#include "classify/cart.h"
#include "classify/nyuminer.h"
#include "data/benchmarks.h"
#include "gtest/gtest.h"

namespace fpdm::classify {
namespace {

struct TrainTest {
  std::vector<int> train;
  std::vector<int> test;
};

TrainTest Halves(const Dataset& data, uint64_t seed) {
  TrainTest tt;
  util::Rng rng(seed);
  StratifiedHalfSplit(data, &rng, &tt.train, &tt.test);
  return tt;
}

Dataset SmallBenchmark(const char* name, int rows) {
  data::BenchmarkSpec spec = data::SpecByName(name);
  spec.rows = rows;
  return data::GenerateBenchmark(spec);
}

// A mildly-noisy variant for tests that assert a clear learnable margin on
// few rows (the paper-shaped specs carry heavy label noise by design).
Dataset MildBenchmark(const char* name, int rows) {
  data::BenchmarkSpec spec = data::SpecByName(name);
  spec.rows = rows;
  spec.noise = 0.15;
  spec.class_skew = 0;
  return data::GenerateBenchmark(spec);
}

TEST(C45Test, BeatsPluralityOnLearnableData) {
  Dataset data = MildBenchmark("diabetes", 600);
  TrainTest tt = Halves(data, 1);
  DecisionTree tree = TrainC45(data, tt.train, C45Options{}, nullptr);
  EXPECT_GT(tree.Accuracy(data, tt.test), data.PluralityAccuracy() + 0.02);
}

TEST(C45Test, PessimisticPruningShrinksTree) {
  Dataset data = SmallBenchmark("yeast", 600);
  TrainTest tt = Halves(data, 2);
  GrowthOptions growth;
  growth.splitter = MakeC45Splitter();
  DecisionTree raw = DecisionTree::Grow(data, tt.train, growth, nullptr);
  DecisionTree pruned = TrainC45(data, tt.train, C45Options{}, nullptr);
  EXPECT_LT(pruned.num_leaves(), raw.num_leaves());
}

TEST(C45Test, CategoricalSplitsAreMway) {
  // On an all-categorical set the C4.5 root split must have one branch per
  // observed value of the chosen attribute.
  Dataset data = SmallBenchmark("mushrooms", 400);
  Splitter splitter = MakeC45Splitter();
  std::optional<Split> split = splitter(data, data.AllRows(), nullptr);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->type, AttrType::kCategorical);
  EXPECT_GE(split->num_branches(), 3);
  for (const auto& group : split->value_groups) {
    EXPECT_EQ(group.size(), 1u);  // fixed m-way: one value per branch
  }
}

TEST(C45Test, WindowingMatchesOrBeatsWorstTrial) {
  Dataset data = SmallBenchmark("diabetes", 400);
  TrainTest tt = Halves(data, 3);
  C45Options options;
  options.window_trials = 4;
  options.seed = 5;
  DecisionTree best = TrainC45Windowed(data, tt.train, options, nullptr);
  util::Rng rng(options.seed);
  int best_errors = data.num_rows();
  for (int t = 0; t < options.window_trials; ++t) {
    DecisionTree trial = C45WindowTrial(data, tt.train, options, rng.Next(), nullptr);
    best_errors = std::min(best_errors, trial.Errors(data, tt.train));
  }
  EXPECT_EQ(best.Errors(data, tt.train), best_errors);
}

TEST(CartTest, BinarySplitsOnly) {
  Dataset data = SmallBenchmark("satimage", 500);
  Splitter splitter = MakeCartSplitter();
  std::optional<Split> split = splitter(data, data.AllRows(), nullptr);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->num_branches(), 2);
}

TEST(CartTest, LearnsAndPrunes) {
  Dataset data = SmallBenchmark("diabetes", 600);
  TrainTest tt = Halves(data, 4);
  CartOptions options;
  options.cv_folds = 5;
  DecisionTree tree = TrainCart(data, tt.train, options, nullptr);
  EXPECT_GT(tree.Accuracy(data, tt.test), data.PluralityAccuracy());
}

TEST(NyuMinerTest, CvAccuracyAboveCartOnMultiwayConcept) {
  // The satimage-like set plants 4-way numeric concepts: NyuMiner's optimal
  // sub-4-ary splits should at least match binary CART.
  Dataset data = SmallBenchmark("satimage", 2000);
  TrainTest tt = Halves(data, 6);
  NyuMinerOptions nyu;
  nyu.cv_folds = 5;
  CartOptions cart;
  cart.cv_folds = 5;
  DecisionTree nyu_tree = TrainNyuMinerCV(data, tt.train, nyu, nullptr);
  DecisionTree cart_tree = TrainCart(data, tt.train, cart, nullptr);
  EXPECT_GE(nyu_tree.Accuracy(data, tt.test),
            cart_tree.Accuracy(data, tt.test) - 0.02);
}

Dataset CleanMushrooms(int rows) {
  data::BenchmarkSpec spec = data::SpecByName("mushrooms");
  spec.rows = rows;
  spec.missing_row_fraction = 0;  // noise- and missing-free: fully learnable
  return data::GenerateBenchmark(spec);
}

TEST(NyuMinerTest, UnprunedFitsTraining) {
  Dataset data = CleanMushrooms(500);
  NyuMinerOptions options;
  options.min_split_rows = 2;
  options.splitter.min_branch_rows = 1;  // allow singleton leaves: exact fit
  DecisionTree tree =
      TrainNyuMinerUnpruned(data, data.AllRows(), options, nullptr);
  EXPECT_DOUBLE_EQ(tree.Accuracy(data, data.AllRows()), 1.0);
}

TEST(NyuMinerTest, RsTrialConvergesToConsistentTree) {
  Dataset data = CleanMushrooms(500);
  NyuMinerOptions options;
  options.min_split_rows = 2;
  options.splitter.min_branch_rows = 1;
  DecisionTree tree = RsTrialTree(data, data.AllRows(), options, 42, nullptr);
  // The final RS tree classifies all training rows correctly: the window
  // absorbed every exception (the windowing loop's exit condition).
  EXPECT_GT(tree.Accuracy(data, data.AllRows()), 0.995);
}

TEST(NyuMinerTest, RsModelBeatsPlurality) {
  Dataset data = MildBenchmark("diabetes", 600);
  TrainTest tt = Halves(data, 8);
  NyuMinerOptions options;
  options.rs_trials = 5;
  RsModel model = TrainNyuMinerRS(data, tt.train, options, nullptr);
  EXPECT_EQ(model.trees.size(), 5u);
  EXPECT_GT(model.rules.size(), 0u);
  int correct = 0;
  for (int row : tt.test) {
    correct += model.rules.Classify(data.Row(row)) == data.Label(row) ? 1 : 0;
  }
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(tt.test.size());
  EXPECT_GT(accuracy, data.PluralityAccuracy() + 0.02);
}

TEST(NyuMinerTest, DeterministicGivenSeed) {
  Dataset data = SmallBenchmark("german", 400);
  TrainTest tt = Halves(data, 9);
  NyuMinerOptions options;
  options.cv_folds = 4;
  options.seed = 77;
  DecisionTree a = TrainNyuMinerCV(data, tt.train, options, nullptr);
  DecisionTree b = TrainNyuMinerCV(data, tt.train, options, nullptr);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  for (int row : tt.test) {
    EXPECT_EQ(a.Classify(data.Row(row)), b.Classify(data.Row(row)));
  }
}

TEST(LearnersTest, AllHandleMissingValues) {
  Dataset data = SmallBenchmark("vote", 435);
  TrainTest tt = Halves(data, 10);
  EXPECT_GT(data.FractionRowsWithMissing(), 0.3);
  NyuMinerOptions nyu;
  nyu.cv_folds = 4;
  C45Options c45;
  CartOptions cart;
  cart.cv_folds = 4;
  DecisionTree t1 = TrainNyuMinerCV(data, tt.train, nyu, nullptr);
  DecisionTree t2 = TrainC45(data, tt.train, c45, nullptr);
  DecisionTree t3 = TrainCart(data, tt.train, cart, nullptr);
  for (const DecisionTree* t : {&t1, &t2, &t3}) {
    EXPECT_GT(t->Accuracy(data, tt.test), data.PluralityAccuracy());
  }
}

TEST(BenchmarkDataTest, ShapesMatchSpecs) {
  for (const data::BenchmarkSpec& spec : data::PaperBenchmarkSpecs()) {
    Dataset data = data::GenerateBenchmark(spec);
    EXPECT_EQ(data.num_rows(), spec.rows) << spec.name;
    EXPECT_EQ(data.num_attributes(),
              spec.numeric_attributes + spec.categorical_attributes)
        << spec.name;
    EXPECT_EQ(data.num_classes(), spec.classes) << spec.name;
    if (spec.missing_row_fraction > 0) {
      EXPECT_NEAR(data.FractionRowsWithMissing(), spec.missing_row_fraction,
                  0.08)
          << spec.name;
    } else {
      EXPECT_DOUBLE_EQ(data.FractionMissingValues(), 0.0) << spec.name;
    }
  }
}

TEST(BenchmarkDataTest, DeterministicInSeed) {
  data::BenchmarkSpec spec = data::SpecByName("german");
  Dataset a = data::GenerateBenchmark(spec);
  Dataset b = data::GenerateBenchmark(spec);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (int r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.Label(r), b.Label(r));
  }
}

TEST(BenchmarkDataTest, StratifiedHalvesBalanceClasses) {
  Dataset data = SmallBenchmark("yeast", 800);
  TrainTest tt = Halves(data, 20);
  EXPECT_NEAR(static_cast<double>(tt.train.size()),
              static_cast<double>(tt.test.size()), 10.0);
  std::vector<double> train_counts = data.ClassCounts(tt.train);
  std::vector<double> test_counts = data.ClassCounts(tt.test);
  for (size_t c = 0; c < train_counts.size(); ++c) {
    EXPECT_NEAR(train_counts[c], test_counts[c], 1.5) << "class " << c;
  }
}

TEST(BenchmarkDataTest, FoldsPartitionRows) {
  Dataset data = SmallBenchmark("diabetes", 300);
  util::Rng rng(3);
  std::vector<std::vector<int>> folds =
      StratifiedFolds(data, data.AllRows(), 5, &rng);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<int> all;
  for (const auto& fold : folds) {
    EXPECT_GT(fold.size(), 50u);
    all.insert(all.end(), fold.begin(), fold.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, data.AllRows());
}

}  // namespace
}  // namespace fpdm::classify
