// Wire protocol and distributed tuple-space server tests: codec round
// trips, frame parsing against malformed/truncated/oversized input (a
// corrupt stream must yield a structured error, never undefined behavior),
// live client/server integration over a Unix-domain socket, server
// crash-recovery from checkpoint + log, and the kDistributed runtime
// backend end to end.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "plinda/net/client.h"
#include "plinda/net/endpoint.h"
#include "plinda/net/server.h"
#include "plinda/net/supervisor.h"
#include "plinda/net/wire.h"
#include "plinda/runtime.h"
#include "plinda/tuple.h"
#include "plinda/tuple_space.h"

namespace fpdm::plinda::net {
namespace {

// ---------------------------------------------------------------------------
// Codec round trips
// ---------------------------------------------------------------------------

Request SampleCommitRequest() {
  Request request;
  request.op = Op::kXCommit;
  request.pid = 7;
  request.incarnation = 2;
  request.seq = 41;
  request.outs = {MakeTuple("result", 3, 2.5), MakeTuple("done")};
  request.has_continuation = true;
  request.continuation = MakeTuple("cont", int64_t{9});
  return request;
}

TEST(WireCodecTest, RequestRoundTrip) {
  const Request request = SampleCommitRequest();
  std::string error;
  Request back;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(request), &back, &error)) << error;
  EXPECT_EQ(back.op, request.op);
  EXPECT_EQ(back.pid, request.pid);
  EXPECT_EQ(back.incarnation, request.incarnation);
  EXPECT_EQ(back.seq, request.seq);
  ASSERT_EQ(back.outs.size(), request.outs.size());
  EXPECT_EQ(back.outs[0], request.outs[0]);
  EXPECT_EQ(back.outs[1], request.outs[1]);
  ASSERT_TRUE(back.has_continuation);
  EXPECT_EQ(back.continuation, request.continuation);
}

TEST(WireCodecTest, InRequestRoundTrip) {
  Request request;
  request.op = Op::kIn;
  request.pid = 3;
  request.seq = 5;
  request.flags = kInRemove | kInBlocking;
  request.tmpl = MakeTemplate(A("task"), F(ValueType::kInt));
  std::string error;
  Request back;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(request), &back, &error)) << error;
  EXPECT_EQ(back.op, Op::kIn);
  EXPECT_EQ(back.flags, request.flags);
  EXPECT_TRUE(Matches(back.tmpl, MakeTuple("task", 12)));
  EXPECT_FALSE(Matches(back.tmpl, MakeTuple("task", 1.5)));
}

TEST(WireCodecTest, ReplyRoundTrip) {
  Reply reply;
  reply.status = WireStatus::kOk;
  reply.has_tuple = true;
  reply.tuple = MakeTuple("hit", 4);
  reply.tuples = {MakeTuple("a"), MakeTuple("b", 1.25)};
  reply.count = 17;
  reply.tuple_ops = 100;
  reply.commits = 5;
  reply.aborts = 2;
  reply.checkpoints = 3;
  reply.ops_replayed = 8;
  reply.cross_shard_ops = 1;
  reply.publish_epoch = 99;
  reply.parked = {{2, true, "(\"task\", ?int)"}, {5, false, "(\"x\")"}};
  reply.wal_group_commits = 41;
  reply.wal_synced_bytes = 12345;
  reply.error = "";
  std::string error;
  Reply back;
  ASSERT_TRUE(DecodeReply(EncodeReply(reply), &back, &error)) << error;
  EXPECT_EQ(back.status, reply.status);
  ASSERT_TRUE(back.has_tuple);
  EXPECT_EQ(back.tuple, reply.tuple);
  ASSERT_EQ(back.tuples.size(), 2u);
  EXPECT_EQ(back.tuples[1], reply.tuples[1]);
  EXPECT_EQ(back.count, reply.count);
  EXPECT_EQ(back.tuple_ops, reply.tuple_ops);
  EXPECT_EQ(back.publish_epoch, reply.publish_epoch);
  ASSERT_EQ(back.parked.size(), 2u);
  EXPECT_EQ(back.parked[0].pid, 2);
  EXPECT_TRUE(back.parked[0].remove);
  EXPECT_EQ(back.parked[0].tmpl_text, "(\"task\", ?int)");
  EXPECT_FALSE(back.parked[1].remove);
  EXPECT_EQ(back.wal_group_commits, 41u);
  EXPECT_EQ(back.wal_synced_bytes, 12345u);
}

TEST(WireCodecTest, LogEntryRoundTrip) {
  LogEntry entry;
  entry.kind = LogKind::kCommit;
  entry.pid = 4;
  entry.incarnation = 1;
  entry.seq = 33;
  entry.in_txn = true;
  entry.tuple = MakeTuple("removed", 2);
  entry.outs = {MakeTuple("out", 1), MakeTuple("out", 2)};
  entry.has_continuation = true;
  entry.continuation = MakeTuple("cont", 3.5);
  std::string error;
  LogEntry back;
  ASSERT_TRUE(DecodeLogEntry(EncodeLogEntry(entry), &back, &error)) << error;
  EXPECT_EQ(back.kind, entry.kind);
  EXPECT_EQ(back.pid, entry.pid);
  EXPECT_EQ(back.seq, entry.seq);
  EXPECT_TRUE(back.in_txn);
  EXPECT_EQ(back.tuple, entry.tuple);
  ASSERT_EQ(back.outs.size(), 2u);
  EXPECT_EQ(back.outs[0], entry.outs[0]);
  ASSERT_TRUE(back.has_continuation);
  EXPECT_EQ(back.continuation, entry.continuation);
}

// ---------------------------------------------------------------------------
// Frame parsing: partial delivery, oversized frames
// ---------------------------------------------------------------------------

TEST(FrameReaderTest, PartialDeliveryYieldsFramesInOrder) {
  std::string stream;
  AppendFrame("first", &stream);
  AppendFrame("second", &stream);
  FrameReader reader;
  std::vector<std::string> frames;
  // Drip the stream one byte at a time; the reader must never yield a
  // partial frame and must yield both in order.
  for (char c : stream) {
    reader.Feed(&c, 1);
    std::string payload;
    while (reader.Next(&payload) == FrameReader::Result::kFrame) {
      frames.push_back(payload);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], "first");
  EXPECT_EQ(frames[1], "second");
  std::string payload;
  EXPECT_EQ(reader.Next(&payload), FrameReader::Result::kNeedMore);
}

TEST(FrameReaderTest, OversizedFrameIsAnErrorAndStaysBroken) {
  // Header advertising a payload over kMaxFramePayload: reject before
  // buffering, and stay broken for all later feeds.
  const uint32_t huge = static_cast<uint32_t>(kMaxFramePayload) + 1;
  std::string header;
  PutU32(huge, &header);
  FrameReader reader;
  reader.Feed(header.data(), header.size());
  std::string payload;
  EXPECT_EQ(reader.Next(&payload), FrameReader::Result::kError);
  EXPECT_FALSE(reader.error().empty());
  std::string good;
  AppendFrame("late", &good);
  reader.Feed(good.data(), good.size());
  EXPECT_EQ(reader.Next(&payload), FrameReader::Result::kError);
}

TEST(FrameReaderTest, EmptyPayloadFrame) {
  std::string stream;
  AppendFrame("", &stream);
  FrameReader reader;
  reader.Feed(stream.data(), stream.size());
  std::string payload;
  ASSERT_EQ(reader.Next(&payload), FrameReader::Result::kFrame);
  EXPECT_TRUE(payload.empty());
}

// ---------------------------------------------------------------------------
// Malformed-input fuzzing (deterministic). The decoders must return false
// on corrupt input — never crash, hang, or read out of bounds (the tier-1
// TSan job and the CI ASan leg watch the "never UB" half of that claim).
// ---------------------------------------------------------------------------

TEST(WireFuzzTest, EveryTruncationFailsCleanly) {
  const std::string encodings[] = {
      EncodeRequest(SampleCommitRequest()),
      EncodeReply([] {
        Reply reply;
        reply.has_tuple = true;
        reply.tuple = MakeTuple("t", 1, 2.5, "payload");
        reply.parked = {{1, true, "(\"x\")"}};
        return reply;
      }()),
      EncodeLogEntry([] {
        LogEntry entry;
        entry.kind = LogKind::kCommit;
        entry.outs = {MakeTuple("a", 1), MakeTuple("b")};
        return entry;
      }()),
  };
  std::string error;
  for (const std::string& full : encodings) {
    for (size_t len = 0; len < full.size(); ++len) {
      const std::string_view prefix(full.data(), len);
      Request request;
      Reply reply;
      LogEntry entry;
      // The decoders demand full consumption, so a strict prefix can never
      // decode successfully under any of them.
      EXPECT_FALSE(DecodeRequest(prefix, &request, &error)) << len;
      EXPECT_FALSE(DecodeReply(prefix, &reply, &error)) << len;
      EXPECT_FALSE(DecodeLogEntry(prefix, &entry, &error)) << len;
    }
  }
}

TEST(WireFuzzTest, RandomByteFlipsNeverCrashTheDecoders) {
  // Deterministic xorshift so failures reproduce bit-for-bit.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const std::string seeds[] = {
      EncodeRequest(SampleCommitRequest()),
      EncodeReply([] {
        Reply reply;
        reply.tuples = {MakeTuple("a", 1), MakeTuple("b", 2.5)};
        reply.error = "detail";
        return reply;
      }()),
      EncodeLogEntry(LogEntry{}),
  };
  for (int round = 0; round < 400; ++round) {
    std::string mutated = seeds[next() % 3];
    const int flips = 1 + static_cast<int>(next() % 4);
    for (int f = 0; f < flips; ++f) {
      mutated[next() % mutated.size()] ^= static_cast<char>(next() & 0xff);
    }
    if (next() % 4 == 0) mutated.resize(next() % (mutated.size() + 1));
    std::string error;
    Request request;
    Reply reply;
    LogEntry entry;
    // Any outcome is legal except UB; decoding must terminate and leave the
    // reader bounds intact.
    DecodeRequest(mutated, &request, &error);
    DecodeReply(mutated, &reply, &error);
    DecodeLogEntry(mutated, &entry, &error);
    // And the framing layer must survive the same garbage as a payload.
    std::string stream;
    AppendFrame(mutated, &stream);
    FrameReader reader;
    reader.Feed(stream.data(), stream.size());
    std::string payload;
    ASSERT_EQ(reader.Next(&payload), FrameReader::Result::kFrame);
    EXPECT_EQ(payload, mutated);
  }
}

TEST(WireFuzzTest, GarbageStreamsNeverCrashTheFrameReader) {
  uint64_t state = 0xdeadbeefcafef00dull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 100; ++round) {
    std::string garbage(next() % 64, '\0');
    for (char& c : garbage) c = static_cast<char>(next() & 0xff);
    FrameReader reader;
    reader.Feed(garbage.data(), garbage.size());
    std::string payload;
    // Drain until the reader wants more bytes or declares the stream
    // corrupt; either way it must terminate.
    for (int i = 0; i < 128; ++i) {
      const FrameReader::Result result = reader.Next(&payload);
      if (result != FrameReader::Result::kFrame) break;
    }
  }
}

// ---------------------------------------------------------------------------
// Live client/server integration over a Unix-domain socket
// ---------------------------------------------------------------------------

class NetIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeStateDir();
    ASSERT_FALSE(dir_.empty());
    sopts_.endpoint = dir_ + "/space.sock";
    sopts_.state_dir = dir_ + "/state";
    sopts_.num_shards = 2;
    sopts_.checkpoint_every_ops = 4;  // force checkpoints in short tests
    StartServer();
  }

  void TearDown() override {
    StopServer();
    RemoveTree(dir_);
  }

  void StartServer() {
    server_pid_ = ForkServerProcess(sopts_);
    ASSERT_GT(server_pid_, 0);
    ASSERT_TRUE(WaitForSocket(sopts_.endpoint, 10.0));
  }

  void StopServer() {
    if (server_pid_ <= 0) return;
    KillProcess(server_pid_);
    ExitInfo info;
    WaitForExit(server_pid_, 5.0, &info);
    server_pid_ = -1;
  }

  RemoteSpaceOptions ClientOptions(int32_t pid, int32_t incarnation = 0) {
    RemoteSpaceOptions opts;
    opts.endpoint = sopts_.endpoint;
    opts.pid = pid;
    opts.incarnation = incarnation;
    opts.reconnect_timeout_s = 10.0;
    return opts;
  }

  std::string dir_;
  SpaceServerOptions sopts_;
  pid_t server_pid_ = -1;
};

using CallStatus = RemoteTupleSpace::CallStatus;

// Minimal raw-socket client for protocol sequences RemoteTupleSpace cannot
// drive — e.g. abandoning a connection while a blocking in is still parked
// server-side (RemoteTupleSpace::In would sit waiting for the reply).
class RawClient {
 public:
  explicit RawClient(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
    }
  }
  ~RawClient() { Close(); }

  bool ok() const { return fd_ >= 0; }

  /// Abrupt disconnect with no BYE, as a SIGKILLed worker would leave.
  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool Send(const Request& request) {
    std::string framed;
    AppendFrame(EncodeRequest(request), &framed);
    size_t off = 0;
    while (off < framed.size()) {
      const ssize_t w = ::send(fd_, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
      if (w < 0) return false;
      off += static_cast<size_t>(w);
    }
    return true;
  }

  bool Receive(Reply* reply) {
    std::string payload;
    if (!ReceiveRaw(&payload)) return false;
    std::string error;
    return DecodeReply(payload, reply, &error);
  }

  /// Like Receive, but hands back the undecoded frame payload — for tests
  /// that compare reply streams byte for byte.
  bool ReceiveRaw(std::string* payload) {
    char buf[4096];
    for (;;) {
      const FrameReader::Result result = reader_.Next(payload);
      if (result == FrameReader::Result::kFrame) return true;
      if (result == FrameReader::Result::kError) return false;
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) return false;
      reader_.Feed(buf, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

TEST_F(NetIntegrationTest, BasicOpsAndFifoOrder) {
  RemoteTupleSpace client(ClientOptions(1));
  ASSERT_TRUE(client.Connect());
  ASSERT_EQ(client.Out(MakeTuple("task", 1)), CallStatus::kOk);
  ASSERT_EQ(client.Out(MakeTuple("task", 2)), CallStatus::kOk);
  ASSERT_EQ(client.Out(MakeTuple("other", 1.5)), CallStatus::kOk);

  uint64_t count = 0;
  ASSERT_EQ(client.Count(MakeTemplate(A("task"), F(ValueType::kInt)), &count),
            CallStatus::kOk);
  EXPECT_EQ(count, 2u);

  // rd copies without removing; in removes the *oldest* match (FIFO).
  Tuple tuple;
  ASSERT_EQ(client.In(MakeTemplate(A("task"), F(ValueType::kInt)),
                      /*blocking=*/false, /*remove=*/false, &tuple),
            CallStatus::kOk);
  EXPECT_EQ(GetInt(tuple, 1), 1);
  ASSERT_EQ(client.In(MakeTemplate(A("task"), F(ValueType::kInt)),
                      /*blocking=*/false, /*remove=*/true, &tuple),
            CallStatus::kOk);
  EXPECT_EQ(GetInt(tuple, 1), 1);
  ASSERT_EQ(client.In(MakeTemplate(A("task"), F(ValueType::kInt)),
                      /*blocking=*/false, /*remove=*/true, &tuple),
            CallStatus::kOk);
  EXPECT_EQ(GetInt(tuple, 1), 2);
  // inp / rdp on an empty match set report kNotFound, not an error.
  EXPECT_EQ(client.In(MakeTemplate(A("task"), F(ValueType::kInt)),
                      /*blocking=*/false, /*remove=*/true, &tuple),
            CallStatus::kNotFound);
  client.Bye();
}

TEST_F(NetIntegrationTest, TransactionCommitAbortAndContinuation) {
  RemoteTupleSpace client(ClientOptions(1));
  ASSERT_TRUE(client.Connect());
  ASSERT_EQ(client.Out(MakeTuple("victim", 1)), CallStatus::kOk);

  // Abort restores the tuples the transaction removed.
  ASSERT_EQ(client.XStart(), CallStatus::kOk);
  Tuple tuple;
  ASSERT_EQ(client.In(MakeTemplate(A("victim"), F(ValueType::kInt)),
                      /*blocking=*/false, /*remove=*/true, &tuple),
            CallStatus::kOk);
  uint64_t count = 0;
  ASSERT_EQ(client.Count(MakeTemplate(A("victim"), F(ValueType::kInt)), &count),
            CallStatus::kOk);
  EXPECT_EQ(count, 0u);
  ASSERT_EQ(client.XAbort(), CallStatus::kOk);
  ASSERT_EQ(client.Count(MakeTemplate(A("victim"), F(ValueType::kInt)), &count),
            CallStatus::kOk);
  EXPECT_EQ(count, 1u);

  // Commit publishes the outs atomically and stores the continuation.
  ASSERT_EQ(client.XStart(), CallStatus::kOk);
  ASSERT_EQ(client.XCommit({MakeTuple("published", 7)}, true,
                           MakeTuple("cont", 42)),
            CallStatus::kOk);
  ASSERT_EQ(client.Count(MakeTemplate(A("published"), F(ValueType::kInt)),
                         &count),
            CallStatus::kOk);
  EXPECT_EQ(count, 1u);
  Tuple cont;
  ASSERT_EQ(client.XRecover(&cont), CallStatus::kOk);
  EXPECT_EQ(GetInt(cont, 1), 42);
  // A continuation is consumed by the recover that reads it.
  EXPECT_EQ(client.XRecover(&cont), CallStatus::kNotFound);
  client.Bye();
}

TEST_F(NetIntegrationTest, HigherIncarnationAbortsThePredecessorsTxn) {
  RemoteTupleSpace old_client(ClientOptions(7, 0));
  ASSERT_TRUE(old_client.Connect());
  ASSERT_EQ(old_client.Out(MakeTuple("shared", 1)), CallStatus::kOk);
  ASSERT_EQ(old_client.XStart(), CallStatus::kOk);
  Tuple tuple;
  ASSERT_EQ(old_client.In(MakeTemplate(A("shared"), F(ValueType::kInt)),
                          /*blocking=*/false, /*remove=*/true, &tuple),
            CallStatus::kOk);

  // The respawned incarnation registering is the server's signal that the
  // old one died: its open transaction rolls back, restoring the tuple.
  RemoteTupleSpace new_client(ClientOptions(7, 1));
  ASSERT_TRUE(new_client.Connect());
  uint64_t count = 0;
  ASSERT_EQ(new_client.Count(MakeTemplate(A("shared"), F(ValueType::kInt)),
                             &count),
            CallStatus::kOk);
  EXPECT_EQ(count, 1u);
  new_client.Bye();
  old_client.Abandon();
}

TEST_F(NetIntegrationTest, CrashAbortOnConnectionDropWithoutBye) {
  // A worker that vanishes without BYE (SIGKILL) must have its open
  // transaction rolled back by the server on EOF.
  RemoteTupleSpace ctl(ClientOptions(-1));
  ASSERT_TRUE(ctl.Connect());
  ASSERT_EQ(ctl.Out(MakeTuple("job", 5)), CallStatus::kOk);
  {
    RemoteTupleSpace victim(ClientOptions(2));
    ASSERT_TRUE(victim.Connect());
    ASSERT_EQ(victim.XStart(), CallStatus::kOk);
    Tuple tuple;
    ASSERT_EQ(victim.In(MakeTemplate(A("job"), F(ValueType::kInt)),
                        /*blocking=*/false, /*remove=*/true, &tuple),
              CallStatus::kOk);
    victim.Abandon();  // close the socket with no BYE, as a kill would
  }
  // Poll until the server notices the EOF and restores the tuple.
  uint64_t count = 0;
  for (int i = 0; i < 200 && count == 0; ++i) {
    ASSERT_EQ(ctl.Count(MakeTemplate(A("job"), F(ValueType::kInt)), &count),
              CallStatus::kOk);
    if (count == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_EQ(count, 1u);
  ctl.Bye();
}

TEST_F(NetIntegrationTest, BlockingInParksUntilAPublishArrives) {
  // The child parks on a blocking in; the parent publishes the match and
  // then waits for the child's reply tuple.
  const pid_t child = ForkChild([&] {
    RemoteTupleSpace worker(ClientOptions(2));
    if (!worker.Connect()) return 10;
    Tuple tuple;
    if (worker.In(MakeTemplate(A("ping"), F(ValueType::kInt)),
                  /*blocking=*/true, /*remove=*/true,
                  &tuple) != CallStatus::kOk) {
      return 11;
    }
    if (worker.Out(MakeTuple("pong", GetInt(tuple, 1) + 1)) !=
        CallStatus::kOk) {
      return 12;
    }
    worker.Bye();
    return 0;
  });
  ASSERT_GT(child, 0);

  RemoteTupleSpace client(ClientOptions(1));
  ASSERT_TRUE(client.Connect());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(client.Out(MakeTuple("ping", 41)), CallStatus::kOk);
  Tuple tuple;
  ASSERT_EQ(client.In(MakeTemplate(A("pong"), F(ValueType::kInt)),
                      /*blocking=*/true, /*remove=*/true, &tuple),
            CallStatus::kOk);
  EXPECT_EQ(GetInt(tuple, 1), 42);
  ExitInfo info;
  ASSERT_TRUE(WaitForExit(child, 10.0, &info));
  EXPECT_TRUE(info.exited);
  EXPECT_EQ(info.exit_code, 0);
  client.Bye();
}

TEST_F(NetIntegrationTest, CancelFailsParkedAndFutureBlockingOps) {
  const pid_t child = ForkChild([&] {
    RemoteTupleSpace worker(ClientOptions(3));
    if (!worker.Connect()) return 10;
    Tuple tuple;
    const CallStatus status =
        worker.In(MakeTemplate(A("never")), /*blocking=*/true,
                  /*remove=*/true, &tuple);
    return status == CallStatus::kCancelled ? 7 : 11;
  });
  ASSERT_GT(child, 0);

  RemoteTupleSpace ctl(ClientOptions(-1));
  ASSERT_TRUE(ctl.Connect());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(ctl.Cancel(), CallStatus::kOk);
  ExitInfo info;
  ASSERT_TRUE(WaitForExit(child, 10.0, &info));
  EXPECT_TRUE(info.exited);
  EXPECT_EQ(info.exit_code, 7);
  ctl.Bye();
}

TEST_F(NetIntegrationTest, ServerCrashRecoveryFromCheckpointAndLog) {
  RemoteTupleSpace client(ClientOptions(1));
  ASSERT_TRUE(client.Connect());
  // Enough mutations to cross checkpoint_every_ops = 4, so recovery
  // exercises snapshot load + log replay, not just replay.
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(client.Out(MakeTuple("persist", i)), CallStatus::kOk);
  }
  Tuple tuple;
  ASSERT_EQ(client.In(MakeTemplate(A("persist"), A(int64_t{0})),
                      /*blocking=*/false, /*remove=*/true, &tuple),
            CallStatus::kOk);
  ASSERT_EQ(client.XStart(), CallStatus::kOk);
  ASSERT_EQ(client.XCommit({}, true, MakeTuple("cont", 5)), CallStatus::kOk);

  // SIGKILL the server (no cleanup runs), restart it on the same state
  // directory; the client's next call reconnects transparently.
  StopServer();
  StartServer();

  uint64_t count = 0;
  ASSERT_EQ(client.Count(MakeTemplate(A("persist"), F(ValueType::kInt)),
                         &count),
            CallStatus::kOk);
  EXPECT_EQ(count, 9u);  // tuple 0 stays consumed: no double-apply
  Tuple cont;
  ASSERT_EQ(client.XRecover(&cont), CallStatus::kOk);
  EXPECT_EQ(GetInt(cont, 1), 5);
  Reply stats;
  ASSERT_EQ(client.Stats(&stats), CallStatus::kOk);
  EXPECT_GT(stats.checkpoints + stats.ops_replayed, 0u);
  client.Bye();
}

/// The newest (highest-epoch) WAL file in a server state directory, or an
/// empty path when none exists.
std::filesystem::path NewestLogFile(const std::string& state_dir) {
  std::filesystem::path newest;
  long best = -1;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(state_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("log.", 0) != 0) continue;
    const long epoch = std::strtol(name.c_str() + 4, nullptr, 10);
    if (epoch > best) {
      best = epoch;
      newest = entry.path();
    }
  }
  return newest;
}

TEST_F(NetIntegrationTest, TornWalTailIsDiscardedOnRecovery) {
  RemoteTupleSpace client(ClientOptions(1));
  ASSERT_TRUE(client.Connect());
  // 10 outs with checkpoint_every_ops = 4: the periodic checkpoints rotate
  // the log twice, leaving the live log with the newest outs only — the
  // final record on disk is the 10th out.
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(client.Out(MakeTuple("persist", i)), CallStatus::kOk);
  }
  StopServer();

  // Tear the final append: chop one byte off the newest log file, the image
  // a crash mid-write leaves. Recovery must detect the damaged record by
  // its checksum/length, discard it, and replay the intact prefix.
  const std::filesystem::path log = NewestLogFile(sopts_.state_dir);
  ASSERT_FALSE(log.empty());
  const uintmax_t size = std::filesystem::file_size(log);
  ASSERT_GT(size, 0u);
  std::filesystem::resize_file(log, size - 1);

  StartServer();
  uint64_t count = 0;
  ASSERT_EQ(client.Count(MakeTemplate(A("persist"), F(ValueType::kInt)),
                         &count),
            CallStatus::kOk);
  EXPECT_EQ(count, 9u);  // the torn record (out #10) is gone, nothing else
  // The recovered server keeps serving durably: new mutations land.
  ASSERT_EQ(client.Out(MakeTuple("persist", 10)), CallStatus::kOk);
  ASSERT_EQ(client.Count(MakeTemplate(A("persist"), F(ValueType::kInt)),
                         &count),
            CallStatus::kOk);
  EXPECT_EQ(count, 10u);
  client.Bye();
}

TEST_F(NetIntegrationTest, BitRottedWalTailIsDiscardedOnRecovery) {
  RemoteTupleSpace client(ClientOptions(1));
  ASSERT_TRUE(client.Connect());
  // 2 outs only: with the HELLO record that is 3 log records, safely below
  // checkpoint_every_ops = 4 — the live log must not rotate away.
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(client.Out(MakeTuple("persist", i)), CallStatus::kOk);
  }
  StopServer();

  // Flip one bit inside the LAST record's payload: the framed length still
  // parses, so only the per-record checksum can expose the damage. (Only
  // the final record may legitimately be damaged — every earlier record was
  // complete on disk before its successor was appended.)
  const std::filesystem::path log = NewestLogFile(sopts_.state_dir);
  ASSERT_FALSE(log.empty());
  std::string raw;
  {
    std::ifstream in(log, std::ios::binary);
    raw.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
  }
  // Walk the [u32 len][u64 hash][payload] framing to the last record.
  size_t off = 0;
  size_t last = 0;
  uint32_t last_len = 0;
  while (off + 12 <= raw.size()) {
    uint32_t len = 0;
    std::memcpy(&len, raw.data() + off, 4);
    if (off + 12 + len > raw.size()) break;
    last = off;
    last_len = len;
    off += 12 + len;
  }
  ASSERT_GT(last_len, 0u);
  raw[last + 12 + last_len / 2] ^= 0x20;
  {
    std::ofstream out(log, std::ios::binary | std::ios::trunc);
    out.write(raw.data(), static_cast<std::streamsize>(raw.size()));
  }

  StartServer();
  uint64_t count = 0;
  ASSERT_EQ(client.Count(MakeTemplate(A("persist"), F(ValueType::kInt)),
                         &count),
            CallStatus::kOk);
  EXPECT_EQ(count, 1u);  // the rotted record is discarded, the prefix kept
  client.Bye();
}

TEST_F(NetIntegrationTest, DeadClientsParkedWaiterCannotConsumeItsCrashAbort) {
  RemoteTupleSpace ctl(ClientOptions(-1));
  ASSERT_TRUE(ctl.Connect());
  ASSERT_EQ(ctl.Out(MakeTuple("job", 1)), CallStatus::kOk);

  // Raw protocol: register, open a transaction, remove the tuple inside it,
  // park a blocking in on the same template, then vanish without BYE. The
  // crash-abort republishes the tuple; the dead client's own parked waiter
  // must not consume it (that would log a durable removal whose reply goes
  // to a closed socket — the tuple would be lost to every live process).
  RawClient victim(sopts_.endpoint);
  ASSERT_TRUE(victim.ok());
  Reply reply;
  Request hello;
  hello.op = Op::kHello;
  hello.pid = 2;
  ASSERT_TRUE(victim.Send(hello));
  ASSERT_TRUE(victim.Receive(&reply));
  Request xstart;
  xstart.op = Op::kXStart;
  xstart.seq = 1;
  ASSERT_TRUE(victim.Send(xstart));
  ASSERT_TRUE(victim.Receive(&reply));
  Request take;
  take.op = Op::kIn;
  take.seq = 2;
  take.flags = kInRemove;
  take.tmpl = MakeTemplate(A("job"), F(ValueType::kInt));
  ASSERT_TRUE(victim.Send(take));
  ASSERT_TRUE(victim.Receive(&reply));
  ASSERT_TRUE(reply.has_tuple);
  Request park;
  park.op = Op::kIn;
  park.seq = 3;
  park.flags = kInRemove | kInBlocking;
  park.tmpl = MakeTemplate(A("job"), F(ValueType::kInt));
  ASSERT_TRUE(victim.Send(park));
  // No reply arrives: the in is parked. Give the server a moment to park
  // it, then die abruptly.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  victim.Close();

  uint64_t count = 0;
  for (int i = 0; i < 200 && count == 0; ++i) {
    ASSERT_EQ(ctl.Count(MakeTemplate(A("job"), F(ValueType::kInt)), &count),
              CallStatus::kOk);
    if (count == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_EQ(count, 1u);
  ctl.Bye();
}

TEST_F(NetIntegrationTest, ParkedCallOutlivingReconnectWindowSurvivesCrash) {
  // A blocking in may sit parked server-side far longer than the reconnect
  // window before the server crashes. The window must be anchored at the
  // transport failure, not at call entry — otherwise the call returns
  // kUnreachable without a single reconnect attempt.
  const pid_t child = ForkChild([&] {
    RemoteSpaceOptions opts = ClientOptions(2);
    opts.reconnect_timeout_s = 1.5;
    RemoteTupleSpace worker(opts);
    if (!worker.Connect()) return 10;
    Tuple tuple;
    if (worker.In(MakeTemplate(A("late"), F(ValueType::kInt)),
                  /*blocking=*/true, /*remove=*/true,
                  &tuple) != CallStatus::kOk) {
      return 11;
    }
    return GetInt(tuple, 1) == 9 ? 0 : 12;
  });
  ASSERT_GT(child, 0);

  // Let the child stay parked well past its 1.5s reconnect window, then
  // SIGKILL the server and restart it on the same state directory.
  std::this_thread::sleep_for(std::chrono::milliseconds(2500));
  StopServer();
  StartServer();

  RemoteTupleSpace ctl(ClientOptions(-1));
  ASSERT_TRUE(ctl.Connect());
  ASSERT_EQ(ctl.Out(MakeTuple("late", 9)), CallStatus::kOk);
  ExitInfo info;
  ASSERT_TRUE(WaitForExit(child, 15.0, &info));
  EXPECT_TRUE(info.exited);
  EXPECT_EQ(info.exit_code, 0);
  ctl.Bye();
}

TEST_F(NetIntegrationTest, TakeAllDrainSurvivesServerCrash) {
  RemoteTupleSpace client(ClientOptions(1));
  ASSERT_TRUE(client.Connect());
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(client.Out(MakeTuple("res", i)), CallStatus::kOk);
  }
  RemoteTupleSpace ctl(ClientOptions(-1));
  ASSERT_TRUE(ctl.Connect());
  std::vector<Tuple> drained;
  ASSERT_EQ(ctl.TakeAll(&drained), CallStatus::kOk);
  EXPECT_EQ(drained.size(), 6u);

  // SIGKILL + restart on the same state directory: the acknowledged drain
  // must be durable — recovery must not resurrect harvested tuples.
  StopServer();
  StartServer();

  uint64_t count = 0;
  ASSERT_EQ(client.Count(MakeTemplate(A("res"), F(ValueType::kInt)), &count),
            CallStatus::kOk);
  EXPECT_EQ(count, 0u);
  std::vector<Tuple> again;
  ASSERT_EQ(ctl.TakeAll(&again), CallStatus::kOk);
  EXPECT_TRUE(again.empty());
  client.Bye();
  ctl.Bye();
}

TEST_F(NetIntegrationTest, OversizedTrafficFailsStructurallyNotAsCorruption) {
  RemoteTupleSpace client(ClientOptions(1));
  ASSERT_TRUE(client.Connect());
  // A request over the frame cap must fail client-side with a structured
  // error, never reach the wire as what the server would treat as a
  // corrupt stream.
  const std::string huge(kMaxFramePayload + 1, 'x');
  EXPECT_EQ(client.Out(MakeTuple("big", huge)), CallStatus::kWireError);
  EXPECT_NE(client.last_error().find("frame payload limit"),
            std::string::npos)
      << client.last_error();

  // Tuples that fit individually but whose combined TAKEALL reply exceeds
  // the cap: the server must keep the tuples and answer a structured error
  // instead of emitting a frame the client's FrameReader rejects.
  const std::string chunk(6u << 20, 'y');
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(client.Out(MakeTuple("blob", i, chunk)), CallStatus::kOk);
  }
  RemoteTupleSpace ctl(ClientOptions(-1));
  ASSERT_TRUE(ctl.Connect());
  std::vector<Tuple> drained;
  EXPECT_EQ(ctl.TakeAll(&drained), CallStatus::kWireError);
  EXPECT_NE(ctl.last_error().find("frame payload limit"), std::string::npos)
      << ctl.last_error();
  uint64_t count = 0;
  ASSERT_EQ(client.Count(MakeTemplate(A("blob"), F(ValueType::kInt),
                                      F(ValueType::kString)),
                         &count),
            CallStatus::kOk);
  EXPECT_EQ(count, 3u);
  client.Bye();
  ctl.Bye();
}

// ---------------------------------------------------------------------------
// kBatch: codec round trips, fuzz, and batched/pipelined client traffic
// ---------------------------------------------------------------------------

Request SampleBatchRequest() {
  Request request;
  request.op = Op::kBatch;
  request.pid = 4;
  request.incarnation = 1;
  request.seq = 9;
  BatchOp out;
  out.op = Op::kOut;
  out.tuple = MakeTuple("a", 1, 2.5);
  BatchOp take;
  take.op = Op::kIn;
  take.flags = kInRemove;
  take.tmpl = MakeTemplate(A("a"), F(ValueType::kInt), F(ValueType::kDouble));
  request.batch = {out, take};
  return request;
}

Reply SampleBatchReply() {
  Reply reply;
  reply.status = WireStatus::kOk;
  reply.batch_frames = 3;
  reply.batched_ops = 12;
  BatchItem published;  // out applied: kOk, no tuple
  BatchItem hit;
  hit.has_tuple = true;
  hit.tuple = MakeTuple("hit", 2);
  BatchItem miss;
  miss.status = WireStatus::kNotFound;
  reply.items = {published, hit, miss};
  return reply;
}

LogEntry SampleBatchLogEntry() {
  LogEntry entry;
  entry.kind = LogKind::kBatch;
  entry.pid = 2;
  entry.incarnation = 3;
  entry.seq = 17;
  BatchEffect published;
  published.kind = BatchEffectKind::kPublished;
  published.tuple = MakeTuple("pub", 1);
  BatchEffect took;
  took.kind = BatchEffectKind::kTook;
  took.in_txn = true;
  took.tuple = MakeTuple("gone", 2.5);
  BatchEffect read;
  read.kind = BatchEffectKind::kRead;
  read.tuple = MakeTuple("seen", "s");
  BatchEffect miss;
  miss.kind = BatchEffectKind::kMiss;
  entry.effects = {published, took, read, miss};
  return entry;
}

TEST(WireCodecTest, BatchRequestRoundTrip) {
  const Request request = SampleBatchRequest();
  std::string error;
  Request back;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(request), &back, &error)) << error;
  EXPECT_EQ(back.op, Op::kBatch);
  EXPECT_EQ(back.pid, request.pid);
  EXPECT_EQ(back.seq, request.seq);
  ASSERT_EQ(back.batch.size(), 2u);
  EXPECT_EQ(back.batch[0].op, Op::kOut);
  EXPECT_EQ(back.batch[0].tuple, request.batch[0].tuple);
  EXPECT_EQ(back.batch[1].op, Op::kIn);
  EXPECT_EQ(back.batch[1].flags, kInRemove);
  EXPECT_TRUE(Matches(back.batch[1].tmpl, MakeTuple("a", 7, 1.5)));
}

TEST(WireCodecTest, BatchReplyRoundTrip) {
  const Reply reply = SampleBatchReply();
  std::string error;
  Reply back;
  ASSERT_TRUE(DecodeReply(EncodeReply(reply), &back, &error)) << error;
  EXPECT_EQ(back.batch_frames, 3u);
  EXPECT_EQ(back.batched_ops, 12u);
  ASSERT_EQ(back.items.size(), 3u);
  EXPECT_EQ(back.items[0].status, WireStatus::kOk);
  EXPECT_FALSE(back.items[0].has_tuple);
  ASSERT_TRUE(back.items[1].has_tuple);
  EXPECT_EQ(back.items[1].tuple, reply.items[1].tuple);
  EXPECT_EQ(back.items[2].status, WireStatus::kNotFound);
}

TEST(WireCodecTest, BatchLogEntryRoundTrip) {
  const LogEntry entry = SampleBatchLogEntry();
  std::string error;
  LogEntry back;
  ASSERT_TRUE(DecodeLogEntry(EncodeLogEntry(entry), &back, &error)) << error;
  EXPECT_EQ(back.kind, LogKind::kBatch);
  EXPECT_EQ(back.seq, entry.seq);
  ASSERT_EQ(back.effects.size(), 4u);
  EXPECT_EQ(back.effects[0].kind, BatchEffectKind::kPublished);
  EXPECT_EQ(back.effects[0].tuple, entry.effects[0].tuple);
  EXPECT_EQ(back.effects[1].kind, BatchEffectKind::kTook);
  EXPECT_TRUE(back.effects[1].in_txn);
  EXPECT_EQ(back.effects[2].kind, BatchEffectKind::kRead);
  EXPECT_EQ(back.effects[3].kind, BatchEffectKind::kMiss);
}

TEST(WireFuzzTest, BatchFrameEveryTruncationFailsCleanly) {
  // Same contract as the non-batch truncation sweep: a strict prefix of a
  // valid kBatch encoding must decode to a structured error (false + a
  // non-empty message), never succeed or crash.
  const std::string encodings[] = {
      EncodeRequest(SampleBatchRequest()),
      EncodeReply(SampleBatchReply()),
      EncodeLogEntry(SampleBatchLogEntry()),
  };
  for (const std::string& full : encodings) {
    for (size_t len = 0; len < full.size(); ++len) {
      const std::string_view prefix(full.data(), len);
      std::string error;
      Request request;
      Reply reply;
      LogEntry entry;
      EXPECT_FALSE(DecodeRequest(prefix, &request, &error)) << len;
      EXPECT_FALSE(error.empty()) << len;
      error.clear();
      EXPECT_FALSE(DecodeReply(prefix, &reply, &error)) << len;
      EXPECT_FALSE(error.empty()) << len;
      error.clear();
      EXPECT_FALSE(DecodeLogEntry(prefix, &entry, &error)) << len;
      EXPECT_FALSE(error.empty()) << len;
    }
  }
}

TEST(WireFuzzTest, BatchFrameBitFlipsFailStructurallyOrDecode) {
  uint64_t state = 0x2545f4914f6cdd1dull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const std::string seeds[] = {
      EncodeRequest(SampleBatchRequest()),
      EncodeReply(SampleBatchReply()),
      EncodeLogEntry(SampleBatchLogEntry()),
  };
  for (int round = 0; round < 600; ++round) {
    std::string mutated = seeds[next() % 3];
    const int flips = 1 + static_cast<int>(next() % 3);
    for (int f = 0; f < flips; ++f) {
      mutated[next() % mutated.size()] ^=
          static_cast<char>(1u << (next() % 8));
    }
    std::string error;
    Request request;
    Reply reply;
    LogEntry entry;
    // A flip may happen to produce another valid encoding; what it must
    // never produce is a decoder that fails without an error message (or
    // crashes — the sanitizer legs watch that half).
    if (!DecodeRequest(mutated, &request, &error)) {
      EXPECT_FALSE(error.empty());
    }
    error.clear();
    if (!DecodeReply(mutated, &reply, &error)) {
      EXPECT_FALSE(error.empty());
    }
    error.clear();
    if (!DecodeLogEntry(mutated, &entry, &error)) {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST_F(NetIntegrationTest, BatchedOpsApplyInOrderWithPerOpResults) {
  RemoteTupleSpace client(ClientOptions(1));
  ASSERT_TRUE(client.Connect());
  const uint64_t before = client.rpc_round_trips();
  const Template query = MakeTemplate(A("t"), F(ValueType::kInt));
  ASSERT_EQ(client.BatchOut(MakeTuple("t", 1)), CallStatus::kOk);
  ASSERT_EQ(client.BatchOut(MakeTuple("t", 2)), CallStatus::kOk);
  // Sub-ops resolve sequentially server-side: the take sees the batch's own
  // outs and removes the oldest; the read then sees the survivor.
  ASSERT_EQ(client.BatchIn(query, /*remove=*/true), CallStatus::kOk);
  ASSERT_EQ(client.BatchIn(query, /*remove=*/false), CallStatus::kOk);
  ASSERT_EQ(client.BatchIn(MakeTemplate(A("absent")), /*remove=*/true),
            CallStatus::kOk);
  std::vector<BatchItem> items;
  ASSERT_EQ(client.Flush(&items), CallStatus::kOk);
  ASSERT_EQ(items.size(), 5u);
  EXPECT_EQ(items[0].status, WireStatus::kOk);
  EXPECT_FALSE(items[0].has_tuple);
  ASSERT_TRUE(items[2].has_tuple);
  EXPECT_EQ(GetInt(items[2].tuple, 1), 1);
  ASSERT_TRUE(items[3].has_tuple);
  EXPECT_EQ(GetInt(items[3].tuple, 1), 2);
  EXPECT_EQ(items[4].status, WireStatus::kNotFound);
  // The whole five-op batch cost one round trip.
  EXPECT_EQ(client.rpc_round_trips() - before, 1u);
  uint64_t count = 0;
  ASSERT_EQ(client.Count(query, &count), CallStatus::kOk);
  EXPECT_EQ(count, 1u);
  client.Bye();
}

TEST_F(NetIntegrationTest, DeferredTxnFramesRideWithTheNextBlockingCall) {
  RemoteTupleSpace client(ClientOptions(1));
  ASSERT_TRUE(client.Connect());
  ASSERT_EQ(client.Out(MakeTuple("job", 5)), CallStatus::kOk);

  const uint64_t before = client.rpc_round_trips();
  // The worker steady state: [xcommit, xstart, blocking in] as one flush.
  ASSERT_EQ(client.DeferXStart(), CallStatus::kOk);
  Tuple task;
  ASSERT_EQ(client.In(MakeTemplate(A("job"), F(ValueType::kInt)),
                      /*blocking=*/true, /*remove=*/true, &task),
            CallStatus::kOk);
  EXPECT_EQ(GetInt(task, 1), 5);
  ASSERT_EQ(client.DeferXCommit({MakeTuple("res", 6)}, true,
                                MakeTuple("cont", 1)),
            CallStatus::kOk);
  ASSERT_EQ(client.DeferXStart(), CallStatus::kOk);
  ASSERT_EQ(client.In(MakeTemplate(A("res"), F(ValueType::kInt)),
                      /*blocking=*/true, /*remove=*/true, &task),
            CallStatus::kOk);
  EXPECT_EQ(GetInt(task, 1), 6);
  // Two flushes total: [xstart, in] and [xcommit, xstart, in].
  EXPECT_EQ(client.rpc_round_trips() - before, 2u);
  ASSERT_EQ(client.XAbort(), CallStatus::kOk);
  Tuple cont;
  ASSERT_EQ(client.XRecover(&cont), CallStatus::kOk);
  EXPECT_EQ(GetInt(cont, 1), 1);
  client.Bye();
}

TEST_F(NetIntegrationTest, QueuedFramesSurviveAServerRestartBeforeFlush) {
  RemoteTupleSpace client(ClientOptions(1));
  ASSERT_TRUE(client.Connect());
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(client.BatchOut(MakeTuple("p", i)), CallStatus::kOk);
  }
  // Nothing has touched the wire yet; kill and restart the server, then
  // flush — the client reconnects and the batch applies exactly once.
  StopServer();
  StartServer();
  std::vector<BatchItem> items;
  ASSERT_EQ(client.Flush(&items), CallStatus::kOk);
  ASSERT_EQ(items.size(), 3u);
  uint64_t count = 0;
  ASSERT_EQ(client.Count(MakeTemplate(A("p"), F(ValueType::kInt)), &count),
            CallStatus::kOk);
  EXPECT_EQ(count, 3u);
  client.Bye();
}

TEST_F(NetIntegrationTest, BatchRetryIsServedFromTheDedupWindow) {
  RemoteTupleSpace ctl(ClientOptions(-1));
  ASSERT_TRUE(ctl.Connect());

  RawClient worker(sopts_.endpoint);
  ASSERT_TRUE(worker.ok());
  Reply reply;
  Request hello;
  hello.op = Op::kHello;
  hello.pid = 6;
  ASSERT_TRUE(worker.Send(hello));
  ASSERT_TRUE(worker.Receive(&reply));

  Request batch;
  batch.op = Op::kBatch;
  batch.pid = 6;
  batch.seq = 1;
  BatchOp out;
  out.op = Op::kOut;
  out.tuple = MakeTuple("d", 1);
  BatchOp take;
  take.op = Op::kIn;
  take.flags = kInRemove;
  take.tmpl = MakeTemplate(A("d"), F(ValueType::kInt));
  batch.batch = {out, take};
  ASSERT_TRUE(worker.Send(batch));
  Reply first;
  ASSERT_TRUE(worker.Receive(&first));
  ASSERT_EQ(first.status, WireStatus::kOk);
  ASSERT_EQ(first.items.size(), 2u);
  ASSERT_TRUE(first.items[1].has_tuple);

  // The identical frame again, as a post-crash resend would: the cached
  // reply comes back and the out is NOT re-applied.
  ASSERT_TRUE(worker.Send(batch));
  Reply second;
  ASSERT_TRUE(worker.Receive(&second));
  EXPECT_EQ(second.status, WireStatus::kOk);
  ASSERT_EQ(second.items.size(), 2u);
  EXPECT_TRUE(second.items[1].has_tuple);
  EXPECT_EQ(second.items[1].tuple, first.items[1].tuple);
  uint64_t count = 0;
  ASSERT_EQ(ctl.Count(MakeTemplate(A("d"), F(ValueType::kInt)), &count),
            CallStatus::kOk);
  EXPECT_EQ(count, 0u);
  ctl.Bye();
}

TEST_F(NetIntegrationTest, BlockingSubOpInABatchIsAStructuredError) {
  RawClient worker(sopts_.endpoint);
  ASSERT_TRUE(worker.ok());
  Reply reply;
  Request hello;
  hello.op = Op::kHello;
  hello.pid = 7;
  ASSERT_TRUE(worker.Send(hello));
  ASSERT_TRUE(worker.Receive(&reply));

  Request batch;
  batch.op = Op::kBatch;
  batch.pid = 7;
  batch.seq = 1;
  BatchOp park;
  park.op = Op::kIn;
  park.flags = kInRemove | kInBlocking;
  park.tmpl = MakeTemplate(A("never"));
  batch.batch = {park};
  ASSERT_TRUE(worker.Send(batch));
  ASSERT_TRUE(worker.Receive(&reply));
  EXPECT_EQ(reply.status, WireStatus::kError);
  EXPECT_NE(reply.error.find("blocking"), std::string::npos) << reply.error;
}

TEST_F(NetIntegrationTest, AsyncStatusPollAndSingleRoundTripHarvest) {
  RemoteTupleSpace client(ClientOptions(1));
  ASSERT_TRUE(client.Connect());
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(client.Out(MakeTuple("h", i)), CallStatus::kOk);
  }
  RemoteTupleSpace ctl(ClientOptions(-1));
  ASSERT_TRUE(ctl.Connect());

  ASSERT_EQ(ctl.BeginStatus(), CallStatus::kOk);
  EXPECT_TRUE(ctl.status_inflight());
  Reply status;
  CallStatus polled = CallStatus::kPending;
  for (int i = 0; i < 2000 && polled == CallStatus::kPending; ++i) {
    polled = ctl.PollStatus(&status);
    if (polled == CallStatus::kPending) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_EQ(polled, CallStatus::kOk);
  EXPECT_FALSE(ctl.status_inflight());
  EXPECT_GT(status.publish_epoch, 0u);

  // A synchronous call while a status poll is in flight drains the stale
  // reply first, so replies never cross streams.
  ASSERT_EQ(ctl.BeginStatus(), CallStatus::kOk);
  uint64_t count = 0;
  ASSERT_EQ(ctl.Count(MakeTemplate(A("h"), F(ValueType::kInt)), &count),
            CallStatus::kOk);
  EXPECT_EQ(count, 4u);
  EXPECT_FALSE(ctl.status_inflight());

  const uint64_t before = ctl.rpc_round_trips();
  Reply stats;
  std::vector<Tuple> drained;
  ASSERT_EQ(ctl.Harvest(&stats, &drained), CallStatus::kOk);
  EXPECT_EQ(drained.size(), 4u);
  EXPECT_GE(stats.tuple_ops, 4u);
  EXPECT_EQ(ctl.rpc_round_trips() - before, 1u);
  ASSERT_EQ(ctl.Count(MakeTemplate(A("h"), F(ValueType::kInt)), &count),
            CallStatus::kOk);
  EXPECT_EQ(count, 0u);
  client.Bye();
  ctl.Bye();
}

TEST_F(NetIntegrationTest, OversizedBatchSealsAndFlushesAutomatically) {
  RemoteTupleSpace client(ClientOptions(1));
  ASSERT_TRUE(client.Connect());
  // Well past kMaxBatchOps (1024): the client must seal full frames and
  // flush inline when the queue deepens, without the caller noticing.
  constexpr int kOps = 2600;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_EQ(client.BatchOut(MakeTuple("bulk", i)), CallStatus::kOk);
  }
  ASSERT_EQ(client.Flush(), CallStatus::kOk);
  EXPECT_GE(client.batch_frames_sent(), 3u);
  EXPECT_EQ(client.batched_ops_sent(), static_cast<uint64_t>(kOps));
  uint64_t count = 0;
  ASSERT_EQ(client.Count(MakeTemplate(A("bulk"), F(ValueType::kInt)), &count),
            CallStatus::kOk);
  EXPECT_EQ(count, static_cast<uint64_t>(kOps));
  client.Bye();
}

TEST_F(NetIntegrationTest, BatchedMutationsSurviveServerCrashRecovery) {
  RemoteTupleSpace client(ClientOptions(1));
  ASSERT_TRUE(client.Connect());
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(client.BatchOut(MakeTuple("keep", i)), CallStatus::kOk);
  }
  ASSERT_EQ(client.BatchIn(MakeTemplate(A("keep"), A(int64_t{0})),
                           /*remove=*/true),
            CallStatus::kOk);
  ASSERT_EQ(client.Flush(), CallStatus::kOk);
  // The batch was one WAL record; recovery must replay it exactly once.
  StopServer();
  StartServer();
  uint64_t count = 0;
  ASSERT_EQ(client.Count(MakeTemplate(A("keep"), F(ValueType::kInt)), &count),
            CallStatus::kOk);
  EXPECT_EQ(count, 7u);
  client.Bye();
}

// ---------------------------------------------------------------------------
// kDistributed runtime end to end (forked workers + server process)
// ---------------------------------------------------------------------------

RuntimeOptions DistOptions() {
  RuntimeOptions options;
  options.mode = ExecutionMode::kDistributed;
  options.distributed_shards = 2;
  return options;
}

TEST(DistributedRuntimeTest, ProducerConsumerAcrossProcesses) {
  Runtime runtime(2, DistOptions());
  runtime.SpawnOn("producer", 0, [](ProcessContext& ctx) {
    for (int i = 0; i < 5; ++i) ctx.Out(MakeTuple("n", i));
    ctx.Compute(5.0);
  });
  runtime.SpawnOn("consumer", 1, [](ProcessContext& ctx) {
    int64_t sum = 0;
    for (int i = 0; i < 5; ++i) {
      Tuple tuple;
      ctx.In(MakeTemplate(A("n"), F(ValueType::kInt)), &tuple);
      sum += GetInt(tuple, 1);
    }
    ctx.Out(MakeTuple("sum", sum));
  });
  ASSERT_TRUE(runtime.Run()) << runtime.diagnostic();
  // The processes shared no memory: the sum must have travelled through
  // the server and drained back into the local space.
  Tuple tuple;
  ASSERT_TRUE(
      runtime.space().TryIn(MakeTemplate(A("sum"), F(ValueType::kInt)),
                            &tuple));
  EXPECT_EQ(GetInt(tuple, 1), 10);
  EXPECT_GT(runtime.stats().tuple_ops, 0u);
  EXPECT_EQ(runtime.stats().total_work, 5.0);
  EXPECT_GE(runtime.wall_time(), 0.0);
}

TEST(DistributedRuntimeTest, DeadlockIsDetectedAndDiagnosed) {
  Runtime runtime(1, DistOptions());
  runtime.SpawnOn("stuck", 0, [](ProcessContext& ctx) {
    Tuple tuple;
    ctx.In(MakeTemplate(A("never-published")), &tuple);
  });
  EXPECT_FALSE(runtime.Run());
  EXPECT_TRUE(runtime.deadlocked());
  EXPECT_NE(runtime.diagnostic().find("blocked on"), std::string::npos)
      << runtime.diagnostic();
}

TEST(DistributedRuntimeTest, SpawnInsideAProcessIsReported) {
  Runtime runtime(1, DistOptions());
  runtime.SpawnOn("spawner", 0, [](ProcessContext& ctx) {
    ctx.Spawn("late", [](ProcessContext&) {});
  });
  EXPECT_FALSE(runtime.Run());
  ASSERT_FALSE(runtime.errors().empty());
  EXPECT_EQ(runtime.errors()[0].code,
            RuntimeError::Code::kDistributedSpawnUnsupported);
}

TEST(DistributedRuntimeTest, ProtocolMisuseIsReportedNotSwallowed) {
  Runtime runtime(1, DistOptions());
  runtime.SpawnOn("misuser", 0, [](ProcessContext& ctx) {
    ctx.XCommit();  // no transaction open
  });
  EXPECT_FALSE(runtime.Run());
  ASSERT_FALSE(runtime.errors().empty());
  EXPECT_EQ(runtime.errors()[0].code,
            RuntimeError::Code::kXCommitWithoutXStart);
}

TEST(DistributedRuntimeTest, OverlongSocketPathFailsStructurally) {
  // A long distributed_dir would silently truncate into sockaddr_un's
  // sun_path (108 bytes on Linux); the runtime must detect it up front and
  // fail with a structured, actionable error instead of binding a socket
  // at a mangled path.
  RuntimeOptions options = DistOptions();
  options.distributed_dir = "/tmp/" + std::string(200, 'x');
  Runtime runtime(1, options);
  runtime.SpawnOn("idle", 0, [](ProcessContext&) {});
  EXPECT_FALSE(runtime.Run());
  ASSERT_FALSE(runtime.errors().empty());
  EXPECT_EQ(runtime.errors()[0].code, RuntimeError::Code::kBadSocketPath);
  EXPECT_NE(runtime.errors()[0].detail.find("sun_path"), std::string::npos)
      << runtime.errors()[0].detail;
  EXPECT_NE(runtime.errors()[0].detail.find("distributed_dir"),
            std::string::npos)
      << runtime.errors()[0].detail;
}

// ---------------------------------------------------------------------------
// Multi-server placement (PR 5): codec round trips, fuzzing of the HELLO
// placement map and the forwarding/gather encodings, and live scatter/gather
// against three real shard servers.
// ---------------------------------------------------------------------------

Reply SamplePlacementReply() {
  Reply reply;
  reply.status = WireStatus::kOk;
  reply.placement = {"/tmp/fpdm/s0.sock", "/tmp/fpdm/s1.sock",
                     "/tmp/fpdm/s2.sock"};
  reply.cont_stamp = (uint64_t{3} << 32) | 17;
  reply.forwards_pending = 5;
  return reply;
}

/// Placement vector as the TCP transport publishes it: full endpoint
/// strings with scheme + kernel-assigned ports. The placement entries are
/// opaque bytes to the codec, but the fuzzers below must chew on the real
/// shapes clients will decode.
Reply SampleTcpPlacementReply() {
  Reply reply;
  reply.status = WireStatus::kOk;
  reply.placement = {"tcp:127.0.0.1:41873", "tcp:127.0.0.1:35262",
                     "tcp:10.0.0.7:6001"};
  reply.cont_stamp = (uint64_t{9} << 32) | 3;
  reply.forwards_pending = 1;
  return reply;
}

Request SampleForwardRequest() {
  Request request;
  request.op = Op::kForward;
  request.pid = 1;  // source server index
  request.seq = 42;  // per-(source, target) forward sequence
  request.outs = {MakeTuple("fwd", 1), MakeTuple("fwd", 2, 2.5)};
  return request;
}

LogEntry SampleForwardLogEntry() {
  LogEntry entry;
  entry.kind = LogKind::kForward;
  entry.pid = 2;  // source server index
  entry.seq = 9;  // forward-sequence watermark value
  entry.outs = {MakeTuple("fwd", 7, "payload")};
  return entry;
}

// --- 2PC frames: PREPARE / DECIDE / TXN_QUERY + their WAL records ---------

Request SamplePrepareRequest() {
  Request request;
  request.op = Op::kPrepare;
  request.pid = 0;   // coordinator server index
  request.seq = 11;  // forward sequence on the peer channel
  request.txn_pid = 4;
  request.txn_incarnation = 1;
  request.txn_seq = 23;
  return request;
}

Request SampleDecideRequest() {
  Request request;
  request.op = Op::kDecide;
  request.pid = 0;
  request.seq = 12;
  request.txn_pid = 4;
  request.txn_incarnation = 1;
  request.txn_seq = 23;
  request.decision = kTxnCommit;
  return request;
}

Request SampleTxnQueryRequest() {
  Request request;
  request.op = Op::kTxnQuery;
  request.pid = 2;   // querying participant's server index
  request.seq = 13;
  request.txn_pid = 4;
  request.txn_incarnation = 1;
  request.txn_seq = 23;
  return request;
}

Request SampleCrossServerCommitRequest() {
  Request request = SampleCommitRequest();
  request.cont_stamp = (uint64_t{2} << 32) | 41;
  request.participants = {1, 2};  // foreign shards: forces the 2PC slow path
  return request;
}

Reply SampleVoteReply() {
  Reply reply;
  reply.status = WireStatus::kOk;
  reply.vote = kVotePrepared;
  reply.decision = kTxnAbort;
  reply.txn_prepares = 6;
  reply.txn_cross_server = 3;
  return reply;
}

LogEntry SampleXPrepareLogEntry() {
  LogEntry entry;
  entry.kind = LogKind::kXPrepare;
  entry.pid = 4;
  entry.incarnation = 1;
  entry.seq = 23;
  entry.outs = {MakeTuple("result", 8)};
  entry.has_continuation = true;
  entry.continuation = MakeTuple("cont", 5);
  entry.cont_stamp = (uint64_t{1} << 32) | 7;
  entry.participants = {1, 2};
  return entry;
}

LogEntry SamplePreparedLogEntry() {
  LogEntry entry;
  entry.kind = LogKind::kPrepared;
  entry.pid = 4;
  entry.incarnation = 1;
  entry.seq = 23;
  entry.peer = 0;   // coordinator server index
  entry.fseq = 11;  // watermark the PREPARE advanced
  entry.decision = kVotePrepared;
  return entry;
}

LogEntry SampleDecideLogEntry() {
  LogEntry entry;
  entry.kind = LogKind::kDecide;
  entry.pid = 4;
  entry.incarnation = 1;
  entry.seq = 23;
  entry.peer = 0;
  entry.fseq = 12;
  entry.decision = kTxnCommit;
  return entry;
}

TEST(WireCodecTest, TwoPhaseCommitFramesRoundTrip) {
  std::string error;
  Request prep_back;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(SamplePrepareRequest()), &prep_back,
                            &error))
      << error;
  EXPECT_EQ(prep_back.op, Op::kPrepare);
  EXPECT_EQ(prep_back.txn_pid, 4);
  EXPECT_EQ(prep_back.txn_incarnation, 1);
  EXPECT_EQ(prep_back.txn_seq, 23u);

  Request dec_back;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(SampleDecideRequest()), &dec_back,
                            &error))
      << error;
  EXPECT_EQ(dec_back.op, Op::kDecide);
  EXPECT_EQ(dec_back.decision, kTxnCommit);

  Request query_back;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(SampleTxnQueryRequest()),
                            &query_back, &error))
      << error;
  EXPECT_EQ(query_back.op, Op::kTxnQuery);
  EXPECT_EQ(query_back.txn_seq, 23u);

  const Request commit = SampleCrossServerCommitRequest();
  Request commit_back;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(commit), &commit_back, &error))
      << error;
  ASSERT_EQ(commit_back.participants.size(), 2u);
  EXPECT_EQ(commit_back.participants[0], 1u);
  EXPECT_EQ(commit_back.participants[1], 2u);

  const Reply vote = SampleVoteReply();
  Reply vote_back;
  ASSERT_TRUE(DecodeReply(EncodeReply(vote), &vote_back, &error)) << error;
  EXPECT_EQ(vote_back.vote, kVotePrepared);
  EXPECT_EQ(vote_back.decision, kTxnAbort);
  EXPECT_EQ(vote_back.txn_prepares, 6u);
  EXPECT_EQ(vote_back.txn_cross_server, 3u);

  const LogEntry xprep = SampleXPrepareLogEntry();
  LogEntry xprep_back;
  ASSERT_TRUE(DecodeLogEntry(EncodeLogEntry(xprep), &xprep_back, &error))
      << error;
  EXPECT_EQ(xprep_back.kind, LogKind::kXPrepare);
  EXPECT_EQ(xprep_back.cont_stamp, xprep.cont_stamp);
  ASSERT_EQ(xprep_back.participants.size(), 2u);
  EXPECT_EQ(xprep_back.participants[1], 2u);
  ASSERT_EQ(xprep_back.outs.size(), 1u);
  EXPECT_EQ(xprep_back.outs[0], xprep.outs[0]);

  LogEntry prepd_back;
  ASSERT_TRUE(DecodeLogEntry(EncodeLogEntry(SamplePreparedLogEntry()),
                             &prepd_back, &error))
      << error;
  EXPECT_EQ(prepd_back.kind, LogKind::kPrepared);
  EXPECT_EQ(prepd_back.peer, 0);
  EXPECT_EQ(prepd_back.fseq, 11u);
  EXPECT_EQ(prepd_back.decision, kVotePrepared);

  LogEntry decide_back;
  ASSERT_TRUE(DecodeLogEntry(EncodeLogEntry(SampleDecideLogEntry()),
                             &decide_back, &error))
      << error;
  EXPECT_EQ(decide_back.kind, LogKind::kDecide);
  EXPECT_EQ(decide_back.fseq, 12u);
  EXPECT_EQ(decide_back.decision, kTxnCommit);
}

TEST(WireFuzzTest, TwoPhaseCommitEveryTruncationFailsCleanly) {
  // Same guarantee the placement/forward frames carry: a truncated 2PC
  // frame must fail structurally on every prefix — never decode short,
  // never crash (the sanitizer legs watch the no-UB half).
  const std::string encodings[] = {
      EncodeRequest(SamplePrepareRequest()),
      EncodeRequest(SampleDecideRequest()),
      EncodeRequest(SampleTxnQueryRequest()),
      EncodeRequest(SampleCrossServerCommitRequest()),
      EncodeReply(SampleVoteReply()),
      EncodeLogEntry(SampleXPrepareLogEntry()),
      EncodeLogEntry(SamplePreparedLogEntry()),
      EncodeLogEntry(SampleDecideLogEntry()),
  };
  for (const std::string& full : encodings) {
    for (size_t len = 0; len < full.size(); ++len) {
      const std::string_view prefix(full.data(), len);
      std::string error;
      Request request;
      Reply reply;
      LogEntry entry;
      EXPECT_FALSE(DecodeRequest(prefix, &request, &error)) << len;
      EXPECT_FALSE(error.empty()) << len;
      error.clear();
      EXPECT_FALSE(DecodeReply(prefix, &reply, &error)) << len;
      EXPECT_FALSE(error.empty()) << len;
      error.clear();
      EXPECT_FALSE(DecodeLogEntry(prefix, &entry, &error)) << len;
      EXPECT_FALSE(error.empty()) << len;
    }
  }
}

TEST(WireFuzzTest, TwoPhaseCommitBitFlipsFailStructurallyOrDecode) {
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const std::string seeds[] = {
      EncodeRequest(SamplePrepareRequest()),
      EncodeRequest(SampleDecideRequest()),
      EncodeRequest(SampleTxnQueryRequest()),
      EncodeRequest(SampleCrossServerCommitRequest()),
      EncodeReply(SampleVoteReply()),
      EncodeLogEntry(SampleXPrepareLogEntry()),
      EncodeLogEntry(SamplePreparedLogEntry()),
      EncodeLogEntry(SampleDecideLogEntry()),
  };
  for (int round = 0; round < 800; ++round) {
    std::string mutated = seeds[next() % 8];
    const int flips = 1 + static_cast<int>(next() % 3);
    for (int f = 0; f < flips; ++f) {
      mutated[next() % mutated.size()] ^=
          static_cast<char>(1u << (next() % 8));
    }
    std::string error;
    Request request;
    Reply reply;
    LogEntry entry;
    // A flip may still be a valid encoding; a failure must always carry a
    // structured error.
    if (!DecodeRequest(mutated, &request, &error)) {
      EXPECT_FALSE(error.empty());
    }
    error.clear();
    if (!DecodeReply(mutated, &reply, &error)) {
      EXPECT_FALSE(error.empty());
    }
    error.clear();
    if (!DecodeLogEntry(mutated, &entry, &error)) {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(WireCodecTest, HelloPlacementReplyRoundTrip) {
  const Reply reply = SamplePlacementReply();
  std::string error;
  Reply back;
  ASSERT_TRUE(DecodeReply(EncodeReply(reply), &back, &error)) << error;
  ASSERT_EQ(back.placement.size(), 3u);
  EXPECT_EQ(back.placement[0], reply.placement[0]);
  EXPECT_EQ(back.placement[2], reply.placement[2]);
  EXPECT_EQ(back.cont_stamp, reply.cont_stamp);
  EXPECT_EQ(back.forwards_pending, reply.forwards_pending);
}

TEST(WireCodecTest, ForwardAndContStampRoundTrip) {
  std::string error;
  // Server-to-server forward request: source index + fseq + the out group.
  const Request fwd = SampleForwardRequest();
  Request fwd_back;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(fwd), &fwd_back, &error)) << error;
  EXPECT_EQ(fwd_back.op, Op::kForward);
  EXPECT_EQ(fwd_back.pid, 1);
  EXPECT_EQ(fwd_back.seq, 42u);
  ASSERT_EQ(fwd_back.outs.size(), 2u);
  EXPECT_EQ(fwd_back.outs[1], fwd.outs[1]);

  // Unpark carries no payload beyond the op itself.
  Request unpark;
  unpark.op = Op::kUnpark;
  unpark.pid = 3;
  Request unpark_back;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(unpark), &unpark_back, &error))
      << error;
  EXPECT_EQ(unpark_back.op, Op::kUnpark);

  // The commit's continuation recency stamp survives the request codec...
  Request commit;
  commit.op = Op::kXCommit;
  commit.pid = 4;
  commit.seq = 7;
  commit.has_continuation = true;
  commit.continuation = MakeTuple("progress", 3);
  commit.cont_stamp = (uint64_t{2} << 32) | 11;
  Request commit_back;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(commit), &commit_back, &error))
      << error;
  EXPECT_EQ(commit_back.cont_stamp, commit.cont_stamp);

  // ...and the WAL codec, for both the commit and the applied forward.
  LogEntry centry;
  centry.kind = LogKind::kCommit;
  centry.pid = 4;
  centry.seq = 7;
  centry.has_continuation = true;
  centry.continuation = MakeTuple("progress", 3);
  centry.cont_stamp = commit.cont_stamp;
  LogEntry centry_back;
  ASSERT_TRUE(DecodeLogEntry(EncodeLogEntry(centry), &centry_back, &error))
      << error;
  EXPECT_EQ(centry_back.cont_stamp, centry.cont_stamp);

  const LogEntry fentry = SampleForwardLogEntry();
  LogEntry fentry_back;
  ASSERT_TRUE(DecodeLogEntry(EncodeLogEntry(fentry), &fentry_back, &error))
      << error;
  EXPECT_EQ(fentry_back.kind, LogKind::kForward);
  EXPECT_EQ(fentry_back.pid, 2);
  EXPECT_EQ(fentry_back.seq, 9u);
  ASSERT_EQ(fentry_back.outs.size(), 1u);
  EXPECT_EQ(fentry_back.outs[0], fentry.outs[0]);
}

TEST(WireFuzzTest, PlacementAndForwardEveryTruncationFailsCleanly) {
  // The multi-leg gather decodes one reply per scatter leg off the same
  // stream, so a truncated placement/gather reply must fail structurally —
  // never decode short, never crash.
  const std::string encodings[] = {
      EncodeReply(SamplePlacementReply()),
      EncodeReply(SampleTcpPlacementReply()),
      EncodeReply([] {
        Reply reply;  // a gather leg's reply: hit + recovery stamp
        reply.has_tuple = true;
        reply.tuple = MakeTuple("hit", 4);
        reply.cont_stamp = (uint64_t{1} << 32) | 2;
        return reply;
      }()),
      EncodeRequest(SampleForwardRequest()),
      EncodeLogEntry(SampleForwardLogEntry()),
  };
  for (const std::string& full : encodings) {
    for (size_t len = 0; len < full.size(); ++len) {
      const std::string_view prefix(full.data(), len);
      std::string error;
      Request request;
      Reply reply;
      LogEntry entry;
      EXPECT_FALSE(DecodeRequest(prefix, &request, &error)) << len;
      EXPECT_FALSE(error.empty()) << len;
      error.clear();
      EXPECT_FALSE(DecodeReply(prefix, &reply, &error)) << len;
      EXPECT_FALSE(error.empty()) << len;
      error.clear();
      EXPECT_FALSE(DecodeLogEntry(prefix, &entry, &error)) << len;
      EXPECT_FALSE(error.empty()) << len;
    }
  }
}

TEST(WireFuzzTest, PlacementAndForwardBitFlipsFailStructurallyOrDecode) {
  uint64_t state = 0x853c49e6748fea9bull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const std::string seeds[] = {
      EncodeReply(SamplePlacementReply()),
      EncodeReply(SampleTcpPlacementReply()),
      EncodeRequest(SampleForwardRequest()),
      EncodeLogEntry(SampleForwardLogEntry()),
  };
  for (int round = 0; round < 600; ++round) {
    std::string mutated = seeds[next() % 4];
    const int flips = 1 + static_cast<int>(next() % 3);
    for (int f = 0; f < flips; ++f) {
      mutated[next() % mutated.size()] ^=
          static_cast<char>(1u << (next() % 8));
    }
    std::string error;
    Request request;
    Reply reply;
    LogEntry entry;
    // A flip may still be a valid encoding; a failure must always carry a
    // structured error (the sanitizer legs watch the no-UB half).
    if (!DecodeRequest(mutated, &request, &error)) {
      EXPECT_FALSE(error.empty());
    }
    error.clear();
    if (!DecodeReply(mutated, &reply, &error)) {
      EXPECT_FALSE(error.empty());
    }
    error.clear();
    if (!DecodeLogEntry(mutated, &entry, &error)) {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST_F(NetIntegrationTest, UnparkRetractsParkedLegAndKeepsReplyOrder) {
  // A blocking rd with no match parks server-side; Unpark must fail the
  // parked frame with kNotFound BEFORE acking the unpark itself, so a
  // gathering client sees exactly one reply per outstanding frame, in
  // frame order.
  RemoteTupleSpace client(ClientOptions(1));
  ASSERT_TRUE(client.Connect());
  Request park;
  park.op = Op::kIn;
  park.flags = kInBlocking;  // rd: non-destructive park
  park.tmpl = MakeTemplate(A("never-published"), F(ValueType::kInt));
  ASSERT_EQ(client.BeginPipeline(park), CallStatus::kOk);
  ASSERT_EQ(client.Unpark(), CallStatus::kOk);
  ASSERT_EQ(client.pipeline_inflight(), 2u);
  Reply parked_reply;
  ASSERT_EQ(client.FinishPipeline(&parked_reply), CallStatus::kNotFound);
  Reply unpark_ack;
  ASSERT_EQ(client.FinishPipeline(&unpark_ack), CallStatus::kOk);
  EXPECT_EQ(client.pipeline_inflight(), 0u);
  // Unparking with nothing parked is a no-op ack, not an error.
  ASSERT_EQ(client.Unpark(), CallStatus::kOk);
  Reply idle_ack;
  EXPECT_EQ(client.FinishPipeline(&idle_ack), CallStatus::kOk);
  client.Bye();
}

class ShardedNetIntegrationTest : public ::testing::Test {
 protected:
  static constexpr size_t kServers = 3;

  void SetUp() override {
    dir_ = MakeStateDir();
    ASSERT_FALSE(dir_.empty());
    for (size_t k = 0; k < kServers; ++k) {
      placement_.push_back(dir_ + "/s" + std::to_string(k) + ".sock");
    }
    for (size_t k = 0; k < kServers; ++k) {
      SpaceServerOptions sopts;
      sopts.endpoint = placement_[k];
      sopts.state_dir = dir_ + "/state." + std::to_string(k);
      sopts.checkpoint_every_ops = 4;
      sopts.server_index = static_cast<int>(k);
      sopts.placement = placement_;
      sopts.sndbuf_bytes = SndbufBytes();
      const pid_t pid = ForkServerProcess(sopts);
      ASSERT_GT(pid, 0);
      server_pids_.push_back(pid);
    }
    for (const std::string& path : placement_) {
      ASSERT_TRUE(WaitForSocket(path, 10.0));
    }
  }

  void TearDown() override {
    for (const pid_t pid : server_pids_) {
      KillProcess(pid);
      ExitInfo info;
      WaitForExit(pid, 5.0, &info);
    }
    RemoveTree(dir_);
  }

  ShardedRemoteOptions ShardedOptions(int32_t pid, int32_t incarnation = 0) {
    ShardedRemoteOptions opts;
    opts.endpoint = placement_[0];  // bootstrap: learn the map via HELLO
    opts.pid = pid;
    opts.incarnation = incarnation;
    opts.reconnect_timeout_s = 10.0;
    return opts;
  }

  /// A key whose arity-`arity` bucket places on shard `server`.
  std::string KeyForServer(size_t server, size_t arity) {
    for (int i = 0; i < 1000; ++i) {
      const std::string key = "k" + std::to_string(i);
      const Tuple probe =
          arity == 2 ? MakeTuple(key, 0) : MakeTuple(key, 0, 0);
      if (PlacementIndex(BucketKeyFor(probe), kServers) == server) return key;
    }
    ADD_FAILURE() << "no key places on server " << server;
    return "";
  }

  /// Per-server match count, asked of each server directly over its own
  /// control connection — observes where tuples physically live.
  std::vector<uint64_t> DirectCounts(const Template& tmpl) {
    std::vector<uint64_t> counts;
    for (const std::string& path : placement_) {
      RemoteSpaceOptions opts;
      opts.endpoint = path;
      opts.pid = -1;  // control connection: no HELLO, no registration
      opts.reconnect_timeout_s = 5.0;
      RemoteTupleSpace ctl(opts);
      uint64_t count = 0;
      EXPECT_EQ(ctl.Count(tmpl, &count), CallStatus::kOk);
      counts.push_back(count);
      ctl.Bye();
    }
    return counts;
  }

  /// (PREPAREs fanned out, cross-server transactions coordinated), summed
  /// over every shard server's STATS counters.
  std::pair<uint64_t, uint64_t> SumTxnStats() {
    uint64_t prepares = 0;
    uint64_t cross = 0;
    for (const std::string& path : placement_) {
      RemoteSpaceOptions opts;
      opts.endpoint = path;
      opts.pid = -1;
      opts.reconnect_timeout_s = 5.0;
      RemoteTupleSpace ctl(opts);
      Reply stats;
      EXPECT_EQ(ctl.Stats(&stats), CallStatus::kOk);
      prepares += stats.txn_prepares;
      cross += stats.txn_cross_server;
      ctl.Bye();
    }
    return {prepares, cross};
  }

  /// Override to shrink every server socket's SO_SNDBUF (short-write
  /// stress); 0 keeps the kernel default.
  virtual int SndbufBytes() const { return 0; }

  std::string dir_;
  std::vector<std::string> placement_;
  std::vector<pid_t> server_pids_;
};

TEST_F(ShardedNetIntegrationTest, PlacementLearnedFromHelloAndOutsRouted) {
  ShardedRemoteSpace client(ShardedOptions(1));
  ASSERT_TRUE(client.Connect()) << client.last_error();
  ASSERT_EQ(client.num_servers(), kServers);

  // Publish under 12 distinct bucket keys; the client must route each out
  // to the placement owner of its bucket.
  for (int64_t i = 0; i < 12; ++i) {
    ASSERT_EQ(client.Out(MakeTuple("key" + std::to_string(i), i)),
              CallStatus::kOk);
  }
  const Template all =
      MakeTemplate(F(ValueType::kString), F(ValueType::kInt));
  // Each server physically holds exactly its placement slice.
  const std::vector<uint64_t> counts = DirectCounts(all);
  uint64_t total = 0;
  for (size_t k = 0; k < kServers; ++k) {
    uint64_t expected = 0;
    for (int64_t i = 0; i < 12; ++i) {
      const Tuple t = MakeTuple("key" + std::to_string(i), i);
      if (PlacementIndex(BucketKeyFor(t), kServers) == k) ++expected;
    }
    EXPECT_EQ(counts[k], expected) << "server " << k;
    total += counts[k];
  }
  EXPECT_EQ(total, 12u);

  // The formal-first count scatters and sums across the shards...
  uint64_t count = 0;
  ASSERT_EQ(client.Count(all, &count), CallStatus::kOk);
  EXPECT_EQ(count, 12u);

  // ...and the formal-first in drains every tuple back, wherever it lives.
  std::multiset<int64_t> got;
  for (int64_t i = 0; i < 12; ++i) {
    Tuple t;
    ASSERT_EQ(client.In(all, /*blocking=*/false, /*remove=*/true, &t),
              CallStatus::kOk)
        << i;
    got.insert(GetInt(t, 1));
  }
  for (int64_t i = 0; i < 12; ++i) EXPECT_EQ(got.count(i), 1u) << i;
  Tuple none;
  EXPECT_EQ(client.In(all, false, true, &none), CallStatus::kNotFound);
  EXPECT_GT(client.scatter_ops(), 0u);
  EXPECT_LE(client.scatter_rounds(), 4 * client.scatter_ops());
  client.Bye();
}

TEST_F(ShardedNetIntegrationTest, ForeignCommitOutsAreForwardedToOwners) {
  ShardedRemoteSpace client(ShardedOptions(2));
  ASSERT_TRUE(client.Connect()) << client.last_error();

  // Seed the task at a known shard, then consume it in a transaction: the
  // destructive in binds the txn's home to that shard.
  const std::string home_key = KeyForServer(0, 2);
  ASSERT_EQ(client.Out(MakeTuple(home_key, 7)), CallStatus::kOk);
  ASSERT_EQ(client.XStart(), CallStatus::kOk);
  Tuple task;
  ASSERT_EQ(client.In(MakeTemplate(A(home_key), F(ValueType::kInt)),
                      /*blocking=*/true, /*remove=*/true, &task),
            CallStatus::kOk);

  // Commit outs owned by every shard. The home server applies its own and
  // forwards the foreign groups over the server-to-server links.
  std::vector<Tuple> outs;
  for (size_t k = 0; k < kServers; ++k) {
    outs.push_back(MakeTuple(KeyForServer(k, 3), static_cast<int64_t>(k),
                             GetInt(task, 1)));
  }
  ASSERT_EQ(client.XCommit(outs, /*has_continuation=*/false, Tuple{}),
            CallStatus::kOk);

  // Every out is readable through the sharded client (read-your-writes
  // across the forward), and each physically lives on its bucket's owner.
  const Template res_tmpl = MakeTemplate(
      F(ValueType::kString), F(ValueType::kInt), F(ValueType::kInt));
  uint64_t count = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  do {  // forwards are applied by the owner asynchronously — poll briefly
    ASSERT_EQ(client.Count(res_tmpl, &count), CallStatus::kOk);
    if (count == kServers) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  } while (std::chrono::steady_clock::now() < deadline);
  EXPECT_EQ(count, kServers);
  const std::vector<uint64_t> counts = DirectCounts(res_tmpl);
  for (size_t k = 0; k < kServers; ++k) {
    EXPECT_EQ(counts[k], 1u) << "server " << k;
  }
  client.Bye();
}

TEST_F(ShardedNetIntegrationTest, CrossServerTransactionCommitsViaTwoPhase) {
  ShardedRemoteSpace client(ShardedOptions(3));
  ASSERT_TRUE(client.Connect()) << client.last_error();
  const std::string key_a = KeyForServer(0, 2);
  const std::string key_b = KeyForServer(1, 2);
  ASSERT_EQ(client.Out(MakeTuple(key_a, 1)), CallStatus::kOk);
  ASSERT_EQ(client.Out(MakeTuple(key_b, 2)), CallStatus::kOk);
  ASSERT_EQ(client.XStart(), CallStatus::kOk);
  Tuple t;
  ASSERT_EQ(client.In(MakeTemplate(A(key_a), F(ValueType::kInt)), true, true,
                      &t),
            CallStatus::kOk);
  // The second destructive in routes to a different shard than the bound
  // home: the commit below must run the 2PC slow path, not fail.
  ASSERT_EQ(client.In(MakeTemplate(A(key_b), F(ValueType::kInt)), true, true,
                      &t),
            CallStatus::kOk);
  ASSERT_EQ(client.XCommit({MakeTuple("merged", 3)},
                           /*has_continuation=*/false, Tuple{}),
            CallStatus::kOk)
      << client.last_error();

  // Both takes stuck (neither shard republished), the commit out landed.
  // The out may ride a server-to-server forward to its bucket owner, which
  // applies asynchronously — poll briefly, as the forward test does.
  const Template all =
      MakeTemplate(F(ValueType::kString), F(ValueType::kInt));
  uint64_t count = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  do {
    ASSERT_EQ(client.Count(all, &count), CallStatus::kOk);
    if (count == 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  } while (std::chrono::steady_clock::now() < deadline);
  EXPECT_EQ(count, 1u);
  Tuple merged;
  ASSERT_EQ(client.In(MakeTemplate(A("merged"), F(ValueType::kInt)),
                      /*blocking=*/false, /*remove=*/false, &merged),
            CallStatus::kOk);

  // The fleet saw exactly one coordinated cross-server transaction, with
  // one PREPARE per foreign participant.
  const auto [prepares, cross] = SumTxnStats();
  EXPECT_EQ(cross, 1u);
  EXPECT_EQ(prepares, 1u);
  client.Bye();
}

TEST_F(ShardedNetIntegrationTest, CoordinatorOnlyCommitSkipsPrepareRound) {
  ShardedRemoteSpace client(ShardedOptions(3));
  ASSERT_TRUE(client.Connect()) << client.last_error();
  // Two destructive ins, both on shard 0: the fast path — one commit
  // record at the coordinator, no PREPARE fan-out anywhere.
  const std::string key_a = KeyForServer(0, 2);
  ASSERT_EQ(client.Out(MakeTuple(key_a, 1)), CallStatus::kOk);
  ASSERT_EQ(client.Out(MakeTuple(key_a, 2)), CallStatus::kOk);
  ASSERT_EQ(client.XStart(), CallStatus::kOk);
  Tuple t;
  ASSERT_EQ(client.In(MakeTemplate(A(key_a), A(int64_t{1})), true, true, &t),
            CallStatus::kOk);
  ASSERT_EQ(client.In(MakeTemplate(A(key_a), A(int64_t{2})), true, true, &t),
            CallStatus::kOk);
  ASSERT_EQ(client.XCommit({}, /*has_continuation=*/false, Tuple{}),
            CallStatus::kOk);
  const auto [prepares, cross] = SumTxnStats();
  EXPECT_EQ(cross, 0u);
  EXPECT_EQ(prepares, 0u);
  client.Bye();
}

TEST_F(ShardedNetIntegrationTest, CrossServerAbortRestoresEveryLeg) {
  ShardedRemoteSpace client(ShardedOptions(3));
  ASSERT_TRUE(client.Connect()) << client.last_error();
  const std::string key_a = KeyForServer(0, 2);
  const std::string key_b = KeyForServer(1, 2);
  ASSERT_EQ(client.Out(MakeTuple(key_a, 1)), CallStatus::kOk);
  ASSERT_EQ(client.Out(MakeTuple(key_b, 2)), CallStatus::kOk);
  ASSERT_EQ(client.XStart(), CallStatus::kOk);
  Tuple t;
  ASSERT_EQ(client.In(MakeTemplate(A(key_a), F(ValueType::kInt)), true, true,
                      &t),
            CallStatus::kOk);
  ASSERT_EQ(client.In(MakeTemplate(A(key_b), F(ValueType::kInt)), true, true,
                      &t),
            CallStatus::kOk);
  // Abort needs no coordination: each participant leg rolls back its own
  // tentative removals independently.
  ASSERT_EQ(client.XAbort(), CallStatus::kOk);
  uint64_t count = 0;
  ASSERT_EQ(client.Count(MakeTemplate(F(ValueType::kString),
                                      F(ValueType::kInt)),
                         &count),
            CallStatus::kOk);
  EXPECT_EQ(count, 2u);
  client.Bye();
}

TEST_F(ShardedNetIntegrationTest, DeadCoordClientInDoubtTxnAbortsOnRespawn) {
  // A client that vanishes with an OPEN cross-server transaction (commit
  // never sent) resolves through crash-abort; its respawned incarnation's
  // HELLO must find every leg rolled back.
  const std::string key_a = KeyForServer(0, 2);
  const std::string key_b = KeyForServer(1, 2);
  {
    ShardedRemoteSpace victim(ShardedOptions(6, /*incarnation=*/0));
    ASSERT_TRUE(victim.Connect()) << victim.last_error();
    ASSERT_EQ(victim.Out(MakeTuple(key_a, 1)), CallStatus::kOk);
    ASSERT_EQ(victim.Out(MakeTuple(key_b, 2)), CallStatus::kOk);
    Tuple t;
    ASSERT_EQ(victim.XStart(), CallStatus::kOk);
    ASSERT_EQ(victim.In(MakeTemplate(A(key_a), F(ValueType::kInt)), true,
                        true, &t),
              CallStatus::kOk);
    ASSERT_EQ(victim.In(MakeTemplate(A(key_b), F(ValueType::kInt)), true,
                        true, &t),
              CallStatus::kOk);
    victim.Abandon();  // SIGKILL-style exit: no commit, no BYE
  }
  ShardedRemoteSpace respawned(ShardedOptions(6, /*incarnation=*/1));
  ASSERT_TRUE(respawned.Connect()) << respawned.last_error();
  const Template all =
      MakeTemplate(F(ValueType::kString), F(ValueType::kInt));
  uint64_t count = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  do {  // each leg crash-aborts when it notices the EOF — poll briefly
    ASSERT_EQ(respawned.Count(all, &count), CallStatus::kOk);
    if (count == 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  } while (std::chrono::steady_clock::now() < deadline);
  EXPECT_EQ(count, 2u);
  respawned.Bye();
}

TEST_F(ShardedNetIntegrationTest, XRecoverScatterReturnsNewestContinuation) {
  // Two committed continuations with different home servers: the worker's
  // first txn homes on shard 0, its second on shard 1. The respawned
  // incarnation's XRecover scatters destructively and must return the
  // NEWER continuation, regardless of which shard stored it.
  const std::string key_a = KeyForServer(0, 2);
  const std::string key_b = KeyForServer(1, 2);
  {
    ShardedRemoteSpace worker(ShardedOptions(4, /*incarnation=*/0));
    ASSERT_TRUE(worker.Connect()) << worker.last_error();
    ASSERT_EQ(worker.Out(MakeTuple(key_a, 1)), CallStatus::kOk);
    ASSERT_EQ(worker.Out(MakeTuple(key_b, 2)), CallStatus::kOk);
    Tuple t;
    ASSERT_EQ(worker.XStart(), CallStatus::kOk);
    ASSERT_EQ(worker.In(MakeTemplate(A(key_a), F(ValueType::kInt)), true,
                        true, &t),
              CallStatus::kOk);
    ASSERT_EQ(worker.XCommit({}, true, MakeTuple("progress", 1)),
              CallStatus::kOk);
    ASSERT_EQ(worker.XStart(), CallStatus::kOk);
    ASSERT_EQ(worker.In(MakeTemplate(A(key_b), F(ValueType::kInt)), true,
                        true, &t),
              CallStatus::kOk);
    ASSERT_EQ(worker.XCommit({}, true, MakeTuple("progress", 2)),
              CallStatus::kOk);
    worker.Abandon();  // simulate the crash: no Bye
  }
  ShardedRemoteSpace respawned(ShardedOptions(4, /*incarnation=*/1));
  ASSERT_TRUE(respawned.Connect()) << respawned.last_error();
  Tuple cont;
  ASSERT_EQ(respawned.XRecover(&cont), CallStatus::kOk);
  EXPECT_EQ(GetInt(cont, 1), 2);
  // The recover consumed every stored continuation: a second call finds
  // nothing.
  EXPECT_EQ(respawned.XRecover(&cont), CallStatus::kNotFound);
  respawned.Bye();
}

// ---------------------------------------------------------------------------
// Short-write stress (tiny SO_SNDBUF) and threaded-serve equivalence
// ---------------------------------------------------------------------------

TEST_F(NetIntegrationTest, TinySndbufShortWritesLoseNoReplyBytes) {
  StopServer();
  sopts_.sndbuf_bytes = 4096;  // kernel clamps upward, still << one reply
  StartServer();
  RemoteTupleSpace client(ClientOptions(1));
  ASSERT_TRUE(client.Connect());
  const std::string big(64 * 1024, 'x');
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(client.Out(MakeTuple("blob", i, big)), CallStatus::kOk);
  }
  // Each reply (~64 KiB of tuple) dwarfs the send buffer, so the server
  // needs many partial write(2) rounds per reply — EPOLLOUT plus the
  // sent-offset cursor. Every byte must arrive, in FIFO order.
  const Template tmpl = MakeTemplate(A("blob"), F(ValueType::kInt),
                                     F(ValueType::kString));
  for (int i = 0; i < 8; ++i) {
    Tuple got;
    ASSERT_EQ(client.In(tmpl, /*blocking=*/false, /*remove=*/true, &got),
              CallStatus::kOk);
    EXPECT_EQ(GetInt(got, 1), i);
    EXPECT_EQ(GetString(got, 2), big);
  }
  uint64_t count = 1;
  ASSERT_EQ(client.Count(tmpl, &count), CallStatus::kOk);
  EXPECT_EQ(count, 0u);  // nothing dropped, nothing duplicated
  client.Bye();
}

class ShortWriteShardedNetTest : public ShardedNetIntegrationTest {
 protected:
  int SndbufBytes() const override { return 4096; }
};

TEST_F(ShortWriteShardedNetTest, PeerForwardsSurviveShortWrites) {
  ShardedRemoteSpace client(ShardedOptions(2));
  ASSERT_TRUE(client.Connect()) << client.last_error();
  const std::string big(16 * 1024, 'f');
  const std::string home_key = KeyForServer(0, 2);
  std::vector<std::string> foreign_keys;
  for (size_t k = 1; k < kServers; ++k) {
    foreign_keys.push_back(KeyForServer(k, 3));
  }
  // Every commit forwards large foreign outs from the home server to the
  // other owners. The peer links must cut each forward into many short
  // writes without dropping, truncating, or reordering a frame.
  constexpr int kRounds = 12;
  for (int r = 0; r < kRounds; ++r) {
    ASSERT_EQ(client.Out(MakeTuple(home_key, r)), CallStatus::kOk);
    ASSERT_EQ(client.XStart(), CallStatus::kOk);
    Tuple task;
    ASSERT_EQ(client.In(MakeTemplate(A(home_key), F(ValueType::kInt)),
                        /*blocking=*/true, /*remove=*/true, &task),
              CallStatus::kOk);
    std::vector<Tuple> outs;
    for (const std::string& key : foreign_keys) {
      outs.push_back(MakeTuple(key, static_cast<int64_t>(r), big));
    }
    ASSERT_EQ(client.XCommit(outs, /*has_continuation=*/false, Tuple{}),
              CallStatus::kOk);
  }
  // Forwards apply asynchronously on the owners: wait until all arrived.
  const Template res_tmpl = MakeTemplate(
      F(ValueType::kString), F(ValueType::kInt), F(ValueType::kString));
  const uint64_t expect = kRounds * (kServers - 1);
  uint64_t count = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  do {
    ASSERT_EQ(client.Count(res_tmpl, &count), CallStatus::kOk);
    if (count == expect) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  } while (std::chrono::steady_clock::now() < deadline);
  ASSERT_EQ(count, expect);  // no forward was dropped
  // And every forwarded payload arrived byte-identical.
  for (const std::string& key : foreign_keys) {
    std::set<int64_t> seen;
    for (int r = 0; r < kRounds; ++r) {
      Tuple got;
      ASSERT_EQ(client.In(MakeTemplate(A(key), F(ValueType::kInt),
                                       F(ValueType::kString)),
                          /*blocking=*/true, /*remove=*/true, &got),
                CallStatus::kOk);
      EXPECT_EQ(GetString(got, 2), big);
      seen.insert(GetInt(got, 1));
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(kRounds)) << key;
  }
  client.Bye();
}

TEST_F(NetIntegrationTest, ThreadedServeAnswersByteIdenticalToSingle) {
  // One scripted client session, replayed against a single-threaded server
  // and a 4-worker threaded server on fresh state: the raw reply streams
  // must match byte for byte (the threaded loop keeps per-connection FIFO
  // through the strand scheduler and the durability-gated release).
  const auto run = [&](int threads, std::vector<std::string>* replies) {
    StopServer();
    sopts_.threads = threads;
    sopts_.state_dir = dir_ + "/state.t" + std::to_string(threads);
    StartServer();
    RawClient c(sopts_.endpoint);
    ASSERT_TRUE(c.ok());
    const auto roundtrip = [&](const Request& req) {
      ASSERT_TRUE(c.Send(req));
      std::string raw;
      ASSERT_TRUE(c.ReceiveRaw(&raw));
      replies->push_back(std::move(raw));
    };
    Request hello;
    hello.op = Op::kHello;
    hello.pid = 9;
    roundtrip(hello);
    uint64_t seq = 0;
    for (int i = 0; i < 3; ++i) {
      Request out;
      out.op = Op::kOut;
      out.pid = 9;
      out.seq = ++seq;
      out.tuple = MakeTuple("job", i, std::string(2048, 'j'));
      roundtrip(out);
    }
    const Template tmpl = MakeTemplate(A("job"), F(ValueType::kInt),
                                       F(ValueType::kString));
    Request rd;
    rd.op = Op::kIn;
    rd.pid = 9;
    rd.seq = ++seq;
    rd.tmpl = tmpl;
    roundtrip(rd);  // non-destructive, non-blocking read
    Request take;
    take.op = Op::kIn;
    take.pid = 9;
    take.seq = ++seq;
    take.flags = kInRemove;
    take.tmpl = tmpl;
    roundtrip(take);
    Request cnt;
    cnt.op = Op::kCount;
    cnt.pid = 9;
    cnt.seq = ++seq;
    cnt.tmpl = tmpl;
    roundtrip(cnt);
    Request xstart;
    xstart.op = Op::kXStart;
    xstart.pid = 9;
    xstart.seq = ++seq;
    roundtrip(xstart);
    Request txn_take = take;
    txn_take.seq = ++seq;
    roundtrip(txn_take);
    Request commit;
    commit.op = Op::kXCommit;
    commit.pid = 9;
    commit.seq = ++seq;
    commit.outs = {MakeTuple("res", 1), MakeTuple("res", 2)};
    roundtrip(commit);
    Request miss;
    miss.op = Op::kIn;
    miss.pid = 9;
    miss.seq = ++seq;
    miss.tmpl = MakeTemplate(A("missing"), F(ValueType::kInt));
    roundtrip(miss);  // kNotFound is part of the stream too
  };
  std::vector<std::string> single;
  std::vector<std::string> threaded;
  run(1, &single);
  run(4, &threaded);
  ASSERT_EQ(single.size(), threaded.size());
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i], threaded[i]) << "reply " << i;
  }
}

// ---------------------------------------------------------------------------
// Transports (PR 8): endpoint grammar, TCP listen/connect with port-0
// resolution, the worker-launch template, live TCP integration, and the
// structured kBadEndpoint twin of kBadSocketPath.
// ---------------------------------------------------------------------------

TEST(EndpointTest, GrammarParsesAndFormatsCanonically) {
  Endpoint ep;
  std::string error;

  // A bare string is a Unix path — pre-endpoint socket_path strings keep
  // working unchanged.
  ASSERT_TRUE(ParseEndpoint("/tmp/fpdm/space.sock", &ep, &error)) << error;
  EXPECT_EQ(ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(ep.path, "/tmp/fpdm/space.sock");
  EXPECT_EQ(FormatEndpoint(ep), "unix:/tmp/fpdm/space.sock");

  ASSERT_TRUE(ParseEndpoint("unix:/run/s0.sock", &ep, &error)) << error;
  EXPECT_EQ(ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(ep.path, "/run/s0.sock");

  ASSERT_TRUE(ParseEndpoint("tcp:127.0.0.1:6001", &ep, &error)) << error;
  EXPECT_EQ(ep.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(ep.host, "127.0.0.1");
  EXPECT_EQ(ep.port, 6001);
  EXPECT_EQ(FormatEndpoint(ep), "tcp:127.0.0.1:6001");

  // Port 0 is legal: it asks the kernel for a free port at bind.
  ASSERT_TRUE(ParseEndpoint("tcp:localhost:0", &ep, &error)) << error;
  EXPECT_EQ(ep.host, "localhost");
  EXPECT_EQ(ep.port, 0);

  // FormatEndpoint(ParseEndpoint(x)) is a fixed point.
  for (const char* text : {"unix:/a/b.sock", "tcp:10.0.0.7:80"}) {
    ASSERT_TRUE(ParseEndpoint(text, &ep, &error)) << text;
    EXPECT_EQ(FormatEndpoint(ep), text);
  }
}

TEST(EndpointTest, MalformedStringsFailWithAReason) {
  Endpoint ep;
  for (const char* bad : {"", "unix:", "tcp:", "tcp:host", "tcp:host:",
                          "tcp::80", "tcp:host:nan", "tcp:host:70000",
                          "tcp:host:-1"}) {
    std::string error;
    EXPECT_FALSE(ParseEndpoint(bad, &ep, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(EndpointTest, UsableRejectsOverlongUnixPathsButNotTcp) {
  std::string error;
  EXPECT_TRUE(EndpointUsable("/tmp/ok.sock", &error)) << error;
  EXPECT_TRUE(EndpointUsable("tcp:127.0.0.1:0", &error)) << error;
  // An overlong Unix path cannot fit sockaddr_un::sun_path...
  const std::string long_path = "/tmp/" + std::string(200, 'x') + ".sock";
  EXPECT_FALSE(EndpointUsable(long_path, &error));
  EXPECT_FALSE(error.empty());
  // ...but length never disqualifies a TCP endpoint.
  const std::string long_host =
      "tcp:" + std::string(200, 'h') + ".example:80";
  EXPECT_TRUE(EndpointUsable(long_host, &error)) << error;
}

TEST(EndpointTest, ListenResolvesPortZeroAndAcceptsAConnect) {
  Endpoint ep;
  ep.kind = Endpoint::Kind::kTcp;
  ep.host = "127.0.0.1";
  ep.port = 0;
  std::string error;
  const int listen_fd = ListenEndpoint(&ep, kListenBacklog, &error);
  ASSERT_GE(listen_fd, 0) << error;
  // The kernel-assigned port was resolved back, so the concrete address is
  // publishable before anyone connects.
  EXPECT_GT(ep.port, 0);
  const int client_fd = ConnectEndpoint(ep, &error);
  EXPECT_GE(client_fd, 0) << error;
  if (client_fd >= 0) ::close(client_fd);
  ::close(listen_fd);
}

TEST(SupervisorTest, ExpandLaunchTemplateSubstitutesEveryPlaceholder) {
  WorkerLaunch launch;
  launch.endpoint = "tcp:10.0.0.7:6001";
  launch.placement = "tcp:10.0.0.7:6001,tcp:10.0.0.8:6001";
  launch.pid = 3;
  launch.incarnation = 2;
  launch.status_file = "/tmp/run/status.3";
  EXPECT_EQ(
      ExpandLaunchTemplate(
          "ssh mine-host fpdm_worker --endpoint={endpoint} "
          "--placement={placement} --pid={pid} --inc={incarnation} "
          "--status={status_file}",
          launch),
      "ssh mine-host fpdm_worker --endpoint=tcp:10.0.0.7:6001 "
      "--placement=tcp:10.0.0.7:6001,tcp:10.0.0.8:6001 --pid=3 --inc=2 "
      "--status=/tmp/run/status.3");
  // Unknown braces (and shell syntax) pass through verbatim.
  EXPECT_EQ(ExpandLaunchTemplate("echo {pid} ${HOME} {unknown}", launch),
            "echo 3 ${HOME} {unknown}");
}

TEST(SupervisorTest, LaunchWorkerCommandRunsTheExpandedTemplate) {
  const std::string dir = MakeStateDir();
  ASSERT_FALSE(dir.empty());
  WorkerLaunch launch;
  launch.endpoint = "tcp:127.0.0.1:6001";
  launch.placement = "tcp:127.0.0.1:6001";
  launch.pid = 5;
  launch.incarnation = 1;
  launch.status_file = dir + "/status.5";
  // The template stands in for an ssh hop: it must see the substituted
  // values and write the status file the supervisor will poll.
  const pid_t child = LaunchWorkerCommand(
      "echo worker {pid} inc {incarnation} at {endpoint} > {status_file}",
      launch);
  ASSERT_GT(child, 0);
  ExitInfo info;
  ASSERT_TRUE(WaitForExit(child, 10.0, &info));
  EXPECT_TRUE(info.exited);
  EXPECT_EQ(info.exit_code, 0);
  std::ifstream in(launch.status_file);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "worker 5 inc 1 at tcp:127.0.0.1:6001");
  RemoveTree(dir);
}

TEST(WireCodecTest, TcpPlacementReplyRoundTrip) {
  const Reply reply = SampleTcpPlacementReply();
  std::string error;
  Reply back;
  ASSERT_TRUE(DecodeReply(EncodeReply(reply), &back, &error)) << error;
  ASSERT_EQ(back.placement.size(), 3u);
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(back.placement[k], reply.placement[k]) << k;
    // The endpoint strings survived the wire intact and still parse.
    Endpoint ep;
    EXPECT_TRUE(ParseEndpoint(back.placement[k], &ep, &error)) << error;
    EXPECT_EQ(ep.kind, Endpoint::Kind::kTcp) << k;
  }
}

class TcpIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeStateDir();
    ASSERT_FALSE(dir_.empty());
    sopts_.endpoint = "tcp:127.0.0.1:0";
    sopts_.resolved_endpoint_file = dir_ + "/endpoint";
    sopts_.state_dir = dir_ + "/state";
    sopts_.num_shards = 2;
    sopts_.checkpoint_every_ops = 4;
    server_pid_ = ForkServerProcess(sopts_);
    ASSERT_GT(server_pid_, 0);
    // The server binds port 0 itself here (no supervisor pre-bind), then
    // publishes the kernel-assigned port through the resolved-endpoint
    // file; poll for it.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (endpoint_.empty() &&
           std::chrono::steady_clock::now() < deadline) {
      std::ifstream in(sopts_.resolved_endpoint_file);
      std::getline(in, endpoint_);
      if (endpoint_.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    ASSERT_FALSE(endpoint_.empty()) << "server never published its port";
    ASSERT_TRUE(WaitForEndpoint(endpoint_, 10.0));
  }

  void TearDown() override {
    if (server_pid_ > 0) {
      KillProcess(server_pid_);
      ExitInfo info;
      WaitForExit(server_pid_, 5.0, &info);
    }
    RemoveTree(dir_);
  }

  RemoteSpaceOptions ClientOptions(int32_t pid, int32_t incarnation = 0) {
    RemoteSpaceOptions opts;
    opts.endpoint = endpoint_;
    opts.pid = pid;
    opts.incarnation = incarnation;
    opts.reconnect_timeout_s = 10.0;
    return opts;
  }

  std::string dir_;
  std::string endpoint_;
  SpaceServerOptions sopts_;
  pid_t server_pid_ = -1;
};

TEST_F(TcpIntegrationTest, BasicOpsOverLoopbackTcp) {
  // The resolved endpoint is a concrete tcp:127.0.0.1:<port> string.
  Endpoint ep;
  std::string error;
  ASSERT_TRUE(ParseEndpoint(endpoint_, &ep, &error)) << error;
  EXPECT_EQ(ep.kind, Endpoint::Kind::kTcp);
  EXPECT_GT(ep.port, 0);

  RemoteTupleSpace client(ClientOptions(1));
  ASSERT_TRUE(client.Connect()) << client.last_error();
  ASSERT_EQ(client.Out(MakeTuple("task", 1)), CallStatus::kOk);
  ASSERT_EQ(client.Out(MakeTuple("task", 2)), CallStatus::kOk);
  Tuple got;
  ASSERT_EQ(client.In(MakeTemplate(A("task"), F(ValueType::kInt)),
                      /*blocking=*/false, /*remove=*/true, &got),
            CallStatus::kOk);
  EXPECT_EQ(GetInt(got, 1), 1);  // FIFO within a bucket holds over TCP
  ASSERT_EQ(client.In(MakeTemplate(A("task"), F(ValueType::kInt)),
                      /*blocking=*/false, /*remove=*/true, &got),
            CallStatus::kOk);
  EXPECT_EQ(GetInt(got, 1), 2);
  client.Bye();
}

TEST_F(TcpIntegrationTest, ReconnectAfterServerRestartOnSamePort) {
  // A restarted server re-binds the SAME concrete port (the resolved
  // endpoint is its identity now), and the client's reconnect/resend plus
  // the dedup window must make the in-flight call exactly-once — the TCP
  // twin of the Unix-domain crash-recovery tests.
  RemoteTupleSpace client(ClientOptions(1));
  ASSERT_TRUE(client.Connect()) << client.last_error();
  ASSERT_EQ(client.Out(MakeTuple("persist", 7)), CallStatus::kOk);

  KillProcess(server_pid_);
  ExitInfo info;
  WaitForExit(server_pid_, 5.0, &info);
  sopts_.endpoint = endpoint_;  // re-bind the now-known concrete port
  server_pid_ = ForkServerProcess(sopts_);
  ASSERT_GT(server_pid_, 0);
  ASSERT_TRUE(WaitForEndpoint(endpoint_, 10.0));

  Tuple got;
  ASSERT_EQ(client.In(MakeTemplate(A("persist"), F(ValueType::kInt)),
                      /*blocking=*/false, /*remove=*/true, &got),
            CallStatus::kOk);
  EXPECT_EQ(GetInt(got, 1), 7);
  client.Bye();
}

TEST(TcpClientTest, MalformedEndpointFailsFastWithoutAReconnectWindow) {
  // The structured twin of the overlong-sun_path client test: a malformed
  // tcp: string can never become connectable, so Connect must fail
  // immediately — not sit out the reconnect window — with the reason in
  // last_error().
  RemoteSpaceOptions opts;
  opts.endpoint = "tcp:127.0.0.1";  // no port
  opts.pid = 1;
  opts.reconnect_timeout_s = 30.0;  // would hang for 30s if not fast-failed
  RemoteTupleSpace client(opts);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.Connect());
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(waited, 5.0);
  EXPECT_FALSE(client.last_error().empty());
}

TEST(DistributedRuntimeTest, UnsupportedTransportFailsStructurally) {
  // The runtime-level twin of kBadSocketPath: an unsupported transport
  // string must fail the run up front with a structured kBadEndpoint error
  // naming the option, before any server is forked.
  RuntimeOptions options;
  options.mode = ExecutionMode::kDistributed;
  options.distributed_transport = "carrier-pigeon";
  Runtime runtime(1, options);
  runtime.SpawnOn("idle", 0, [](ProcessContext&) {});
  EXPECT_FALSE(runtime.Run());
  ASSERT_FALSE(runtime.errors().empty());
  EXPECT_EQ(runtime.errors()[0].code, RuntimeError::Code::kBadEndpoint);
  EXPECT_NE(runtime.errors()[0].detail.find("distributed_transport"),
            std::string::npos)
      << runtime.errors()[0].detail;
}

}  // namespace
}  // namespace fpdm::plinda::net
