#include "plinda/chaos.h"

#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "plinda/runtime.h"

namespace fpdm::plinda {
namespace {

// ---------------------------------------------------------------------------
// Fault-plan generator
// ---------------------------------------------------------------------------

ChaosOptions BusyOptions(uint64_t seed) {
  ChaosOptions opts;
  opts.seed = seed;
  opts.start_time = 5.0;
  opts.horizon = 400.0;
  opts.machine_mttf = 60.0;
  opts.machine_mttr = 15.0;
  opts.server_mttf = 150.0;
  opts.server_mttr = 20.0;
  opts.max_server_failures = 2;
  return opts;
}

TEST(FaultPlanTest, SameSeedSamePlan) {
  const FaultPlan a = GenerateFaultPlan(5, BusyOptions(42));
  const FaultPlan b = GenerateFaultPlan(5, BusyOptions(42));
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << i;
    EXPECT_EQ(a.events[i].time, b.events[i].time) << i;  // bit-for-bit
    EXPECT_EQ(a.events[i].machine, b.events[i].machine) << i;
  }
  EXPECT_EQ(ToString(a), ToString(b));
  EXPECT_FALSE(a.empty());
}

TEST(FaultPlanTest, DifferentSeedsDiffer) {
  const FaultPlan a = GenerateFaultPlan(5, BusyOptions(1));
  const FaultPlan b = GenerateFaultPlan(5, BusyOptions(2));
  EXPECT_NE(ToString(a), ToString(b));
}

TEST(FaultPlanTest, SparedMachinesNeverFail) {
  ChaosOptions opts = BusyOptions(7);
  opts.spared_machines = {0, 2};
  const FaultPlan plan = GenerateFaultPlan(4, opts);
  EXPECT_GT(plan.machine_failures(), 0);
  for (const FaultEvent& event : plan.events) {
    if (event.machine < 0) continue;  // server event
    EXPECT_NE(event.machine, 0) << ToString(event);
    EXPECT_NE(event.machine, 2) << ToString(event);
  }
}

TEST(FaultPlanTest, EventsSortedByTime) {
  const FaultPlan plan = GenerateFaultPlan(6, BusyOptions(11));
  for (size_t i = 1; i < plan.events.size(); ++i) {
    EXPECT_LE(plan.events[i - 1].time, plan.events[i].time) << i;
  }
}

// Replays the plan keeping a "which machines are down" set: crashes must hit
// up machines, recoveries down machines, and concurrency must respect the cap.
TEST(FaultPlanTest, OutagesWellFormedAndCapped) {
  ChaosOptions opts = BusyOptions(13);
  opts.machine_mttf = 30.0;  // lots of pressure on the cap
  opts.max_concurrent_down = 2;
  const FaultPlan plan = GenerateFaultPlan(6, opts);
  ASSERT_GT(plan.machine_failures(), 0);
  std::set<int> down;
  bool server_down = false;
  for (const FaultEvent& event : plan.events) {
    switch (event.kind) {
      case FaultEvent::Kind::kMachineCrash:
      case FaultEvent::Kind::kMachineRetreat:
        EXPECT_EQ(down.count(event.machine), 0u) << ToString(event);
        down.insert(event.machine);
        EXPECT_LE(down.size(), 2u) << ToString(event);
        break;
      case FaultEvent::Kind::kMachineRecover:
        EXPECT_EQ(down.count(event.machine), 1u) << ToString(event);
        down.erase(event.machine);
        break;
      case FaultEvent::Kind::kServerCrash:
        EXPECT_FALSE(server_down) << ToString(event);
        server_down = true;
        break;
      case FaultEvent::Kind::kServerRecover:
        EXPECT_TRUE(server_down) << ToString(event);
        server_down = false;
        break;
      case FaultEvent::Kind::kServerPartition:
      case FaultEvent::Kind::kServerHeal:
        break;  // link faults; the partition tests below cover them
    }
  }
  EXPECT_TRUE(down.empty()) << "every outage must end";
  EXPECT_FALSE(server_down) << "server recovery is always scheduled";
}

TEST(FaultPlanTest, DefaultCapLeavesAMachineUp) {
  // No spared machines, no explicit cap: all-but-one may be down at once,
  // never the whole network.
  ChaosOptions opts = BusyOptions(17);
  opts.spared_machines.clear();
  opts.machine_mttf = 10.0;
  opts.machine_mttr = 50.0;
  opts.server_mttf = 0;
  const int kMachines = 3;
  const FaultPlan plan = GenerateFaultPlan(kMachines, opts);
  std::set<int> down;
  for (const FaultEvent& event : plan.events) {
    if (event.kind == FaultEvent::Kind::kMachineRecover) {
      down.erase(event.machine);
    } else {
      down.insert(event.machine);
      EXPECT_LT(static_cast<int>(down.size()), kMachines) << ToString(event);
    }
  }
}

TEST(FaultPlanTest, ServerCrashCountCapped) {
  ChaosOptions opts = BusyOptions(19);
  opts.machine_mttf = 0;
  opts.server_mttf = 20.0;  // would crash many times if uncapped
  opts.max_server_failures = 2;
  const FaultPlan plan = GenerateFaultPlan(4, opts);
  EXPECT_EQ(plan.machine_failures(), 0);
  EXPECT_GE(plan.server_crashes(), 1);
  EXPECT_LE(plan.server_crashes(), 2);
}

TEST(FaultPlanTest, DisabledGeneratorsYieldEmptyPlan) {
  ChaosOptions opts;
  opts.machine_mttf = 0;
  opts.server_mttf = 0;
  EXPECT_TRUE(GenerateFaultPlan(4, opts).empty());
}

TEST(FaultPlanTest, PartitionsCappedPairedAndDrawnAfterEverythingElse) {
  ChaosOptions opts = BusyOptions(23);
  opts.num_servers = 3;
  const FaultPlan without = GenerateFaultPlan(4, opts);
  opts.partition_mttf = 40.0;  // would cut many links if uncapped
  opts.partition_duration = 10.0;
  opts.max_partitions = 2;
  const FaultPlan with = GenerateFaultPlan(4, opts);

  EXPECT_GE(with.server_partitions(), 1);
  EXPECT_LE(with.server_partitions(), 2);
  // Partition draws ride AFTER every machine/server draw: the plan with
  // partitions enabled contains the partition-free plan's events verbatim
  // — same kinds, times, victims — so existing seeds never reshuffle.
  std::vector<FaultEvent> base;
  for (const FaultEvent& event : with.events) {
    if (event.kind == FaultEvent::Kind::kServerPartition ||
        event.kind == FaultEvent::Kind::kServerHeal) {
      continue;
    }
    base.push_back(event);
  }
  ASSERT_EQ(base.size(), without.events.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].kind, without.events[i].kind) << i;
    EXPECT_EQ(base[i].time, without.events[i].time) << i;  // bit-for-bit
    EXPECT_EQ(base[i].machine, without.events[i].machine) << i;
  }
  // Every partition heals, on the same victim, strictly later.
  std::set<int> cut;
  for (const FaultEvent& event : with.events) {
    if (event.kind == FaultEvent::Kind::kServerPartition) {
      EXPECT_EQ(cut.count(event.machine), 0u) << ToString(event);
      cut.insert(event.machine);
      EXPECT_GE(event.machine, 0);  // num_servers = 3 draws a victim
      EXPECT_LT(event.machine, 3);
    } else if (event.kind == FaultEvent::Kind::kServerHeal) {
      EXPECT_EQ(cut.count(event.machine), 1u) << ToString(event);
      cut.erase(event.machine);
    }
  }
  EXPECT_TRUE(cut.empty()) << "every partition must heal";
}

TEST(FaultPlanTest, ToStringRendersEveryKind) {
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultEvent::Kind::kMachineCrash, 1.0, 2});
  plan.events.push_back(FaultEvent{FaultEvent::Kind::kMachineRetreat, 2.0, 3});
  plan.events.push_back(FaultEvent{FaultEvent::Kind::kMachineRecover, 3.0, 2});
  plan.events.push_back(FaultEvent{FaultEvent::Kind::kServerCrash, 4.0, -1});
  plan.events.push_back(FaultEvent{FaultEvent::Kind::kServerRecover, 5.0, -1});
  plan.events.push_back(
      FaultEvent{FaultEvent::Kind::kServerPartition, 6.0, 1});
  plan.events.push_back(FaultEvent{FaultEvent::Kind::kServerHeal, 7.0, 1});
  const std::string text = ToString(plan);
  EXPECT_NE(text.find("SERVER_PARTITION"), std::string::npos);
  EXPECT_NE(text.find("SERVER_HEAL"), std::string::npos);
  EXPECT_NE(text.find("tuple-space server 1"), std::string::npos);
  EXPECT_NE(text.find("CRASH"), std::string::npos);
  EXPECT_NE(text.find("RETREAT"), std::string::npos);
  EXPECT_NE(text.find("RECOVER"), std::string::npos);
  EXPECT_NE(text.find("SERVER_CRASH"), std::string::npos);
  EXPECT_NE(text.find("SERVER_RECOVER"), std::string::npos);
  EXPECT_NE(text.find("machine 2"), std::string::npos);
  EXPECT_NE(text.find("tuple-space server"), std::string::npos);
}

// ---------------------------------------------------------------------------
// InstallFaultPlan end-to-end: machine faults drive kill + respawn
// ---------------------------------------------------------------------------

TEST(InstallFaultPlanTest, MachineCrashKillsAndRespawns) {
  Runtime rt(2);
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultEvent::Kind::kMachineCrash, 2.0, 1});
  plan.events.push_back(FaultEvent{FaultEvent::Kind::kMachineRecover, 30.0, 1});
  InstallFaultPlan(&rt, plan);

  int final_incarnation = -1;
  rt.SpawnOn("victim", 1, [&](ProcessContext& ctx) {
    Tuple cont;
    ctx.XRecover(&cont);  // restartable body
    ctx.Compute(5.0);     // killed at t=2 on the first incarnation
    final_incarnation = ctx.incarnation();
  });
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(final_incarnation, 1);
  EXPECT_EQ(rt.stats().processes_killed, 1u);
  EXPECT_EQ(rt.stats().processes_respawned, 1u);

  bool saw_killed = false, saw_respawned = false, saw_machine_failed = false;
  for (const TraceEvent& event : rt.trace()) {
    saw_killed |= event.kind == TraceEvent::Kind::kKilled;
    saw_respawned |= event.kind == TraceEvent::Kind::kRespawned;
    saw_machine_failed |= event.kind == TraceEvent::Kind::kMachineFailed;
  }
  EXPECT_TRUE(saw_killed);
  EXPECT_TRUE(saw_respawned);
  EXPECT_TRUE(saw_machine_failed);
}

// ---------------------------------------------------------------------------
// Tuple-space-server failure model
// ---------------------------------------------------------------------------

TEST(ServerFailureTest, RecoveryRebuildsExactSpaceContents) {
  Runtime rt(1);
  rt.ScheduleServerFailure(5.0);
  rt.ScheduleServerRecovery(9.0);
  rt.Spawn("worker", [&](ProcessContext& ctx) {
    ctx.Out(MakeTuple("t", 1));
    ctx.Out(MakeTuple("t", 2));
    Tuple got;
    ctx.In(MakeTemplate(A("t"), A(int64_t{1})), &got);  // logged removal
    ctx.Compute(10.0);  // rides across the crash + recovery
    ctx.Out(MakeTuple("t", 3));
  });
  ASSERT_TRUE(rt.Run());

  // Recovery = checkpoint + replayed log: (t,1) stays consumed, (t,2)
  // survives, (t,3) lands after recovery — and FIFO order is preserved.
  Tuple t;
  Template q = MakeTemplate(A("t"), F(ValueType::kInt));
  ASSERT_TRUE(rt.space().TryIn(q, &t));
  EXPECT_EQ(GetInt(t, 1), 2);
  ASSERT_TRUE(rt.space().TryIn(q, &t));
  EXPECT_EQ(GetInt(t, 1), 3);
  EXPECT_TRUE(rt.space().empty());

  const RuntimeStats& stats = rt.stats();
  EXPECT_EQ(stats.server_failures, 1u);
  EXPECT_EQ(stats.server_ops_replayed, 3u);  // two outs + one removal
  EXPECT_GE(stats.server_checkpoints, 2u);   // initial + post-recovery
  EXPECT_DOUBLE_EQ(stats.server_downtime, 4.0);

  bool saw_failed = false, saw_recovered = false;
  for (const TraceEvent& event : rt.trace()) {
    saw_failed |= event.kind == TraceEvent::Kind::kServerFailed;
    saw_recovered |= event.kind == TraceEvent::Kind::kServerRecovered;
  }
  EXPECT_TRUE(saw_failed);
  EXPECT_TRUE(saw_recovered);
}

TEST(ServerFailureTest, PreSeededTuplesSurviveViaInitialCheckpoint) {
  Runtime rt(1);
  rt.space().Out(MakeTuple("seed", 7));
  rt.ScheduleServerFailure(2.0);
  rt.ScheduleServerRecovery(4.0);
  rt.Spawn("idler", [](ProcessContext& ctx) { ctx.Compute(6.0); });
  ASSERT_TRUE(rt.Run());
  Tuple t;
  ASSERT_TRUE(rt.space().TryIn(MakeTemplate(A("seed"), F(ValueType::kInt)), &t));
  EXPECT_EQ(GetInt(t, 1), 7);
}

TEST(ServerFailureTest, OpsStallUntilRecoveryPlusRestartDelay) {
  RuntimeOptions opts;
  opts.server_restart_delay = 2.0;
  Runtime rt(1, opts);
  rt.ScheduleServerFailure(1.0);
  rt.ScheduleServerRecovery(8.0);
  double out_done = 0;
  rt.Spawn("stalled", [&](ProcessContext& ctx) {
    ctx.Compute(2.0);            // t = 2, server already down
    ctx.Out(MakeTuple("x", 1));  // must stall
    out_done = ctx.Now();
  });
  ASSERT_TRUE(rt.Run());
  EXPECT_GE(out_done, 10.0);  // recovery (8) + restart delay (2)
  EXPECT_LT(out_done, 10.5);
}

TEST(ServerFailureTest, PeriodicCheckpointsFollowTheInterval) {
  RuntimeOptions opts;
  opts.server_checkpoint_interval = 1.0;
  Runtime rt(1, opts);
  rt.ScheduleServerFailure(1000.0);  // never fires; enables protection
  rt.Spawn("producer", [](ProcessContext& ctx) {
    for (int i = 0; i < 5; ++i) {
      ctx.Compute(2.0);
      ctx.Out(MakeTuple("tick", i));
    }
  });
  ASSERT_TRUE(rt.Run());
  // ~10 virtual seconds of mutations at a 1-second interval: the lazy
  // checkpointer must have taken every due boundary (plus the initial one).
  EXPECT_GE(rt.stats().server_checkpoints, 9u);
  uint64_t traced = 0;
  for (const TraceEvent& event : rt.trace()) {
    if (event.kind == TraceEvent::Kind::kServerCheckpoint) ++traced;
  }
  EXPECT_EQ(traced, rt.stats().server_checkpoints);
}

TEST(ServerFailureTest, AbortWhileServerDownRestoresTupleAfterRecovery) {
  Runtime rt(2);
  rt.set_auto_respawn(false);
  rt.space().Out(MakeTuple("t", 1));
  rt.ScheduleServerFailure(3.0);
  rt.ScheduleServerRecovery(8.0);
  rt.ScheduleFailure(1, 5.0);  // kills the victim while the server is down
  rt.SpawnOn("victim", 1, [](ProcessContext& ctx) {
    ctx.XStart();
    Tuple got;
    ctx.In(MakeTemplate(A("t"), F(ValueType::kInt)), &got);
    ctx.Compute(10.0);  // dies here; abort must re-publish (t, 1)
    ctx.XCommit();
  });
  int64_t collected = 0;
  rt.SpawnOn("collector", 0, [&](ProcessContext& ctx) {
    ctx.Compute(11.0);  // well past recovery + restart delay
    Tuple got;
    ctx.In(MakeTemplate(A("t"), F(ValueType::kInt)), &got);
    collected = GetInt(got, 1);
  });
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(collected, 1);
  EXPECT_EQ(rt.stats().transactions_aborted, 1u);
  EXPECT_EQ(rt.stats().processes_killed, 1u);
}

TEST(ServerFailureTest, DeadlockDiagnosticReportsServerDown) {
  Runtime rt(1);
  rt.ScheduleServerFailure(1.0);  // no recovery ever scheduled
  rt.Spawn("stalled", [](ProcessContext& ctx) {
    ctx.Compute(2.0);
    ctx.Out(MakeTuple("x", 1));  // stalls forever
  });
  EXPECT_FALSE(rt.Run());
  EXPECT_TRUE(rt.deadlocked());
  const std::string& diag = rt.diagnostic();
  EXPECT_NE(diag.find("stalled"), std::string::npos) << diag;
  EXPECT_NE(diag.find("tuple-space server recovery"), std::string::npos) << diag;
  EXPECT_NE(diag.find("no recovery is scheduled"), std::string::npos) << diag;
}

// ---------------------------------------------------------------------------
// Structured protocol errors (formerly asserts)
// ---------------------------------------------------------------------------

TEST(ProtocolErrorTest, XCommitWithoutXStart) {
  Runtime rt(1);
  rt.Spawn("bad", [](ProcessContext& ctx) { ctx.XCommit(); });
  bool other_finished = false;
  rt.Spawn("good", [&](ProcessContext& ctx) {
    ctx.Compute(1.0);
    other_finished = true;
  });
  EXPECT_FALSE(rt.Run());
  EXPECT_FALSE(rt.deadlocked());
  EXPECT_TRUE(other_finished) << "an erroring process must not stop others";
  ASSERT_EQ(rt.errors().size(), 1u);
  const RuntimeError& error = rt.errors()[0];
  EXPECT_EQ(error.code, RuntimeError::Code::kXCommitWithoutXStart);
  EXPECT_EQ(error.process, "bad");
  // The offender terminates without counting (or respawning) as a failure.
  EXPECT_EQ(rt.stats().processes_killed, 0u);
  EXPECT_EQ(rt.stats().processes_respawned, 0u);
  bool saw_error_event = false;
  for (const TraceEvent& event : rt.trace()) {
    saw_error_event |= event.kind == TraceEvent::Kind::kError;
  }
  EXPECT_TRUE(saw_error_event);
  EXPECT_NE(rt.diagnostic().find("xcommit without xstart"), std::string::npos)
      << rt.diagnostic();
}

TEST(ProtocolErrorTest, NestedXStart) {
  Runtime rt(1);
  rt.Spawn("nester", [](ProcessContext& ctx) {
    ctx.XStart();
    ctx.XStart();
    ctx.XCommit();
  });
  EXPECT_FALSE(rt.Run());
  ASSERT_EQ(rt.errors().size(), 1u);
  EXPECT_EQ(rt.errors()[0].code, RuntimeError::Code::kNestedXStart);
}

TEST(ProtocolErrorTest, XRecoverInsideTransaction) {
  Runtime rt(1);
  rt.Spawn("mixed", [](ProcessContext& ctx) {
    ctx.XStart();
    Tuple cont;
    ctx.XRecover(&cont);
    ctx.XCommit();
  });
  EXPECT_FALSE(rt.Run());
  ASSERT_EQ(rt.errors().size(), 1u);
  EXPECT_EQ(rt.errors()[0].code,
            RuntimeError::Code::kXRecoverInsideTransaction);
}

TEST(ProtocolErrorTest, OpenTransactionRolledBackOnError) {
  // Tuples removed inside the failed process's open transaction must be
  // restored, exactly as on a machine crash.
  Runtime rt(1);
  rt.space().Out(MakeTuple("t", 1));
  rt.Spawn("bad", [](ProcessContext& ctx) {
    ctx.XStart();
    Tuple got;
    ctx.In(MakeTemplate(A("t"), F(ValueType::kInt)), &got);
    ctx.XStart();  // protocol error: tuple must be restored
  });
  EXPECT_FALSE(rt.Run());
  EXPECT_EQ(rt.space().CountMatches(MakeTemplate(A("t"), F(ValueType::kInt))),
            1u);
  EXPECT_EQ(rt.stats().transactions_aborted, 1u);
}

// ---------------------------------------------------------------------------
// ToString coverage: every TraceEvent kind and every RuntimeError code
// ---------------------------------------------------------------------------

TEST(ToStringTest, TraceEventAllKinds) {
  struct Case {
    TraceEvent::Kind kind;
    const char* label;
  };
  const Case kProcessCases[] = {
      {TraceEvent::Kind::kSpawned, "SPAWNED"},
      {TraceEvent::Kind::kDone, "DONE"},
      {TraceEvent::Kind::kKilled, "KILLED"},
      {TraceEvent::Kind::kRespawned, "RESPAWNED"},
      {TraceEvent::Kind::kError, "ERROR"},
  };
  for (const Case& c : kProcessCases) {
    TraceEvent event;
    event.kind = c.kind;
    event.time = 1.5;
    event.pid = 3;
    event.machine = 2;
    event.process = "proc-x";
    const std::string text = ToString(event);
    EXPECT_NE(text.find(c.label), std::string::npos) << text;
    EXPECT_NE(text.find("proc-x"), std::string::npos) << text;
    EXPECT_NE(text.find("machine 2"), std::string::npos) << text;
  }

  const Case kMachineCases[] = {
      {TraceEvent::Kind::kMachineFailed, "MACHINE_FAILED"},
      {TraceEvent::Kind::kMachineRecovered, "MACHINE_RECOVERED"},
  };
  for (const Case& c : kMachineCases) {
    TraceEvent event;
    event.kind = c.kind;
    event.machine = 4;
    const std::string text = ToString(event);
    EXPECT_NE(text.find(c.label), std::string::npos) << text;
    EXPECT_NE(text.find("machine 4"), std::string::npos) << text;
  }

  const Case kServerCases[] = {
      {TraceEvent::Kind::kServerFailed, "SERVER_FAILED"},
      {TraceEvent::Kind::kServerRecovered, "SERVER_RECOVERED"},
      {TraceEvent::Kind::kServerCheckpoint, "SERVER_CHECKPOINT"},
  };
  for (const Case& c : kServerCases) {
    TraceEvent event;
    event.kind = c.kind;  // pid = machine = -1: the server itself
    const std::string text = ToString(event);
    EXPECT_NE(text.find(c.label), std::string::npos) << text;
    EXPECT_NE(text.find("tuple-space server"), std::string::npos) << text;
  }
}

TEST(ToStringTest, RuntimeErrorAllCodes) {
  struct Case {
    RuntimeError::Code code;
    const char* label;
  };
  const Case kCases[] = {
      {RuntimeError::Code::kXCommitWithoutXStart, "xcommit without xstart"},
      {RuntimeError::Code::kNestedXStart, "nested xstart"},
      {RuntimeError::Code::kXRecoverInsideTransaction,
       "xrecover inside an open transaction"},
      {RuntimeError::Code::kNoMachineAvailable,
       "spawn requested while every machine is down"},
  };
  for (const Case& c : kCases) {
    RuntimeError error;
    error.code = c.code;
    error.time = 2.5;
    error.pid = 1;
    error.process = "offender";
    const std::string text = ToString(error);
    EXPECT_NE(text.find(c.label), std::string::npos) << text;
    EXPECT_NE(text.find("offender"), std::string::npos) << text;
  }
  RuntimeError with_detail;
  with_detail.detail = "extra context";
  EXPECT_NE(ToString(with_detail).find("extra context"), std::string::npos);
}

}  // namespace
}  // namespace fpdm::plinda
