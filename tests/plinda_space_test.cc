#include "plinda/tuple_space.h"

#include "gtest/gtest.h"
#include "util/random.h"

namespace fpdm::plinda {
namespace {

TEST(TupleSpaceTest, OutThenIn) {
  TupleSpace space;
  space.Out(MakeTuple("task", 1));
  EXPECT_EQ(space.size(), 1u);
  Tuple t;
  ASSERT_TRUE(space.TryIn(MakeTemplate(A("task"), F(ValueType::kInt)), &t));
  EXPECT_EQ(GetInt(t, 1), 1);
  EXPECT_TRUE(space.empty());
}

TEST(TupleSpaceTest, TryInOnEmptyFails) {
  TupleSpace space;
  EXPECT_FALSE(space.TryIn(MakeTemplate(A("task")), nullptr));
}

TEST(TupleSpaceTest, RdDoesNotRemove) {
  TupleSpace space;
  space.Out(MakeTuple("x", 5));
  Tuple t;
  ASSERT_TRUE(space.TryRd(MakeTemplate(A("x"), F(ValueType::kInt)), &t));
  EXPECT_EQ(space.size(), 1u);
  ASSERT_TRUE(space.TryIn(MakeTemplate(A("x"), F(ValueType::kInt)), &t));
  EXPECT_TRUE(space.empty());
}

TEST(TupleSpaceTest, FifoOrderAmongMatches) {
  TupleSpace space;
  space.Out(MakeTuple("t", 1));
  space.Out(MakeTuple("t", 2));
  space.Out(MakeTuple("t", 3));
  Tuple t;
  Template q = MakeTemplate(A("t"), F(ValueType::kInt));
  ASSERT_TRUE(space.TryIn(q, &t));
  EXPECT_EQ(GetInt(t, 1), 1);
  ASSERT_TRUE(space.TryIn(q, &t));
  EXPECT_EQ(GetInt(t, 1), 2);
  ASSERT_TRUE(space.TryIn(q, &t));
  EXPECT_EQ(GetInt(t, 1), 3);
}

TEST(TupleSpaceTest, FifoOrderAcrossBuckets) {
  // A formal first field must consult every bucket of the arity and still
  // return the globally oldest match.
  TupleSpace space;
  space.Out(MakeTuple("b", 1));
  space.Out(MakeTuple("a", 2));
  Tuple t;
  Template q = MakeTemplate(F(ValueType::kString), F(ValueType::kInt));
  ASSERT_TRUE(space.TryIn(q, &t));
  EXPECT_EQ(GetString(t, 0), "b");
  ASSERT_TRUE(space.TryIn(q, &t));
  EXPECT_EQ(GetString(t, 0), "a");
}

TEST(TupleSpaceTest, NonStringFirstField) {
  TupleSpace space;
  space.Out(MakeTuple(10, "payload"));
  Tuple t;
  ASSERT_TRUE(
      space.TryIn(MakeTemplate(A(int64_t{10}), F(ValueType::kString)), &t));
  EXPECT_EQ(GetString(t, 1), "payload");
}

TEST(TupleSpaceTest, MatchingRespectsActualValues) {
  TupleSpace space;
  space.Out(MakeTuple("task", 1, "a"));
  space.Out(MakeTuple("task", 2, "b"));
  Tuple t;
  ASSERT_TRUE(space.TryIn(
      MakeTemplate(A("task"), A(int64_t{2}), F(ValueType::kString)), &t));
  EXPECT_EQ(GetString(t, 2), "b");
  EXPECT_EQ(space.size(), 1u);
}

TEST(TupleSpaceTest, CountMatches) {
  TupleSpace space;
  space.Out(MakeTuple("t", 1));
  space.Out(MakeTuple("t", 2));
  space.Out(MakeTuple("u", 3));
  EXPECT_EQ(space.CountMatches(MakeTemplate(A("t"), F(ValueType::kInt))), 2u);
  EXPECT_EQ(space.CountMatches(
                MakeTemplate(F(ValueType::kString), F(ValueType::kInt))),
            3u);
}

TEST(TupleSpaceTest, ClearEmptiesEverything) {
  TupleSpace space;
  space.Out(MakeTuple("t", 1));
  space.Out(MakeTuple(2.5));
  space.Clear();
  EXPECT_TRUE(space.empty());
  EXPECT_FALSE(space.TryIn(MakeTemplate(F(ValueType::kDouble)), nullptr));
}

TEST(TupleSpaceTest, CheckpointRestoreRoundTrip) {
  TupleSpace space;
  space.Out(MakeTuple("t", 1));
  space.Out(MakeTuple("t", 2));
  space.Out(MakeTuple("u", 3.5, "x"));
  std::string checkpoint = space.Checkpoint();

  TupleSpace restored;
  ASSERT_TRUE(restored.Restore(checkpoint));
  EXPECT_EQ(restored.size(), 3u);
  // FIFO order must be preserved across restore (rollback recovery).
  Tuple t;
  Template q = MakeTemplate(A("t"), F(ValueType::kInt));
  ASSERT_TRUE(restored.TryIn(q, &t));
  EXPECT_EQ(GetInt(t, 1), 1);
  ASSERT_TRUE(restored.TryIn(q, &t));
  EXPECT_EQ(GetInt(t, 1), 2);
}

TEST(TupleSpaceTest, RestoreRejectsCorruptCheckpoint) {
  TupleSpace space;
  EXPECT_FALSE(space.Restore("not a checkpoint"));
  EXPECT_TRUE(space.empty());
}

TEST(TupleSpaceTest, EmptyCheckpoint) {
  // An empty space still produces a (non-empty) header so that Restore can
  // distinguish "empty space" from "no checkpoint at all".
  TupleSpace space;
  const std::string checkpoint = space.Checkpoint();
  EXPECT_FALSE(checkpoint.empty());
  TupleSpace restored;
  restored.Out(MakeTuple("stale", 1));
  EXPECT_TRUE(restored.Restore(checkpoint));
  EXPECT_TRUE(restored.empty());
  // The empty string is NOT a valid checkpoint.
  EXPECT_FALSE(restored.Restore(""));
  EXPECT_TRUE(restored.empty());
}

// Property (chaos hardening): no corruption of a valid checkpoint may be
// silently accepted. Every strict prefix and every single-byte flip must
// make Restore return false and leave the space empty — never crash, never
// restore a partial image. Before the checksummed header, a prefix ending
// on a tuple boundary restored "successfully" with tuples missing.
class CheckpointCorruptionTest : public ::testing::Test {
 protected:
  static std::string ValidCheckpoint() {
    TupleSpace space;
    space.Out(MakeTuple("task", 1, "payload"));
    space.Out(MakeTuple("task", 2, "x"));
    space.Out(MakeTuple(3.25, int64_t{-7}));
    space.Out(MakeTuple("result", 42));
    return space.Checkpoint();
  }

  static void ExpectRejected(const std::string& corrupt, const char* what,
                             size_t index) {
    TupleSpace space;
    space.Out(MakeTuple("pre-existing", 0));  // must be gone afterwards too
    EXPECT_FALSE(space.Restore(corrupt)) << what << " at " << index;
    EXPECT_TRUE(space.empty()) << what << " at " << index;
  }
};

TEST_F(CheckpointCorruptionTest, EveryPrefixRejected) {
  const std::string checkpoint = ValidCheckpoint();
  for (size_t len = 0; len < checkpoint.size(); ++len) {
    ExpectRejected(checkpoint.substr(0, len), "prefix", len);
  }
}

TEST_F(CheckpointCorruptionTest, EverySingleByteFlipRejected) {
  const std::string checkpoint = ValidCheckpoint();
  for (size_t i = 0; i < checkpoint.size(); ++i) {
    std::string corrupt = checkpoint;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);  // flip within printable
    if (corrupt[i] == checkpoint[i]) continue;
    ExpectRejected(corrupt, "byte flip", i);
  }
}

TEST_F(CheckpointCorruptionTest, RandomMutationsRejected) {
  const std::string checkpoint = ValidCheckpoint();
  util::Rng rng(20260807);
  for (int trial = 0; trial < 500; ++trial) {
    std::string corrupt = checkpoint;
    const size_t i = rng.NextBounded(corrupt.size());
    const char flipped =
        static_cast<char>(rng.NextBounded(256));
    if (flipped == corrupt[i]) continue;
    corrupt[i] = flipped;
    ExpectRejected(corrupt, "random mutation", static_cast<size_t>(trial));
  }
}

TEST_F(CheckpointCorruptionTest, TrailingGarbageRejected) {
  const std::string checkpoint = ValidCheckpoint();
  ExpectRejected(checkpoint + "x", "trailing garbage", 0);
  ExpectRejected(checkpoint + checkpoint, "doubled checkpoint", 0);
}

TEST(TupleSpaceTest, ManyTuplesStressFifo) {
  TupleSpace space;
  for (int i = 0; i < 1000; ++i) space.Out(MakeTuple("task", i));
  Template q = MakeTemplate(A("task"), F(ValueType::kInt));
  for (int i = 0; i < 1000; ++i) {
    Tuple t;
    ASSERT_TRUE(space.TryIn(q, &t));
    EXPECT_EQ(GetInt(t, 1), i);
  }
  EXPECT_TRUE(space.empty());
}

}  // namespace
}  // namespace fpdm::plinda
