# Nested ThreadSanitizer build + run of the PLinda test suite, invoked as a
# tier-1 ctest case (see tests/CMakeLists.txt):
#   cmake -DSOURCE_DIR=... -DBINARY_DIR=... -P run_tsan.cmake
# Configures SOURCE_DIR into BINARY_DIR with FPDM_SANITIZE=thread, builds
# only fpdm_plinda_tests (fpdm_util + fpdm_plinda, a few seconds), and runs
# it. Any data race aborts the test.

foreach(var SOURCE_DIR BINARY_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} must be passed with -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BINARY_DIR}
          -DFPDM_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE configure_result)
if(NOT configure_result EQUAL 0)
  message(FATAL_ERROR "TSan configure failed")
endif()

include(ProcessorCount)
ProcessorCount(nproc)
if(nproc EQUAL 0)
  set(nproc 4)
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BINARY_DIR} --target fpdm_plinda_tests
          -j ${nproc}
  RESULT_VARIABLE build_result)
if(NOT build_result EQUAL 0)
  message(FATAL_ERROR "TSan build failed")
endif()

execute_process(
  COMMAND ${BINARY_DIR}/tests/fpdm_plinda_tests
  RESULT_VARIABLE run_result)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "fpdm_plinda_tests failed under ThreadSanitizer")
endif()
