#include "classify/parallel.h"

#include "data/benchmarks.h"
#include "gtest/gtest.h"

namespace fpdm::classify {
namespace {

Dataset SmallBenchmark(const char* name, int rows) {
  data::BenchmarkSpec spec = data::SpecByName(name);
  spec.rows = rows;
  return data::GenerateBenchmark(spec);
}

TEST(ParallelCvTest, MatchesSequentialTree) {
  Dataset data = SmallBenchmark("diabetes", 400);
  NyuMinerOptions options;
  options.cv_folds = 4;
  options.seed = 123;
  DecisionTree sequential =
      TrainNyuMinerCV(data, data.AllRows(), options, nullptr);
  ParallelExecOptions exec;
  exec.num_workers = 2;
  ParallelTreeResult parallel =
      ParallelNyuMinerCV(data, data.AllRows(), options, exec);
  ASSERT_TRUE(parallel.ok);
  EXPECT_EQ(parallel.tree.num_nodes(), sequential.num_nodes());
  for (int row = 0; row < data.num_rows(); ++row) {
    ASSERT_EQ(parallel.tree.Classify(data.Row(row)),
              sequential.Classify(data.Row(row)))
        << "row " << row;
  }
}

TEST(ParallelCvTest, MoreWorkersFinishSooner) {
  Dataset data = SmallBenchmark("diabetes", 400);
  NyuMinerOptions options;
  options.cv_folds = 8;
  auto run = [&](int workers) {
    ParallelExecOptions exec;
    exec.num_workers = workers;
    exec.seconds_per_work_unit = 1e-4;
    ParallelTreeResult r = ParallelNyuMinerCV(data, data.AllRows(), options, exec);
    EXPECT_TRUE(r.ok);
    return r.completion_time;
  };
  const double t1 = run(1);
  const double t4 = run(4);
  EXPECT_GT(t1 / t4, 1.8);
}

TEST(ParallelCvTest, SurvivesWorkerFailure) {
  Dataset data = SmallBenchmark("diabetes", 300);
  NyuMinerOptions options;
  options.cv_folds = 4;
  DecisionTree sequential =
      TrainNyuMinerCV(data, data.AllRows(), options, nullptr);
  ParallelExecOptions exec;
  exec.num_workers = 3;
  exec.seconds_per_work_unit = 1e-3;
  exec.failures = {{2, 5.0}};
  ParallelTreeResult parallel =
      ParallelNyuMinerCV(data, data.AllRows(), options, exec);
  ASSERT_TRUE(parallel.ok);
  EXPECT_GE(parallel.stats.processes_killed, 1u);
  EXPECT_EQ(parallel.tree.num_nodes(), sequential.num_nodes());
}

TEST(ParallelC45Test, MatchesSequentialWindowedTree) {
  Dataset data = SmallBenchmark("german", 400);
  C45Options options;
  options.window_trials = 4;
  options.seed = 7;
  DecisionTree sequential =
      TrainC45Windowed(data, data.AllRows(), options, nullptr);
  ParallelExecOptions exec;
  exec.num_workers = 2;
  ParallelTreeResult parallel = ParallelC45(data, data.AllRows(), options, exec);
  ASSERT_TRUE(parallel.ok);
  EXPECT_EQ(parallel.tree.num_nodes(), sequential.num_nodes());
  EXPECT_EQ(parallel.tree.Errors(data, data.AllRows()),
            sequential.Errors(data, data.AllRows()));
}

TEST(ParallelC45Test, SpeedupScalesWithTrials) {
  Dataset data = SmallBenchmark("german", 400);
  C45Options options;
  options.window_trials = 6;
  auto run = [&](int workers) {
    ParallelExecOptions exec;
    exec.num_workers = workers;
    exec.seconds_per_work_unit = 1e-4;
    ParallelTreeResult r = ParallelC45(data, data.AllRows(), options, exec);
    EXPECT_TRUE(r.ok);
    return r.completion_time;
  };
  const double t1 = run(1);
  const double t3 = run(3);
  EXPECT_GT(t1 / t3, 1.7);
}

TEST(ParallelRsTest, MatchesSequentialModel) {
  Dataset data = SmallBenchmark("diabetes", 300);
  NyuMinerOptions options;
  options.rs_trials = 4;
  options.seed = 55;
  RsModel sequential = TrainNyuMinerRS(data, data.AllRows(), options, nullptr);
  ParallelExecOptions exec;
  exec.num_workers = 2;
  ParallelRsResult parallel =
      ParallelNyuMinerRS(data, data.AllRows(), options, exec);
  ASSERT_TRUE(parallel.ok);
  ASSERT_EQ(parallel.model.trees.size(), sequential.trees.size());
  EXPECT_EQ(parallel.model.rules.size(), sequential.rules.size());
  for (int row = 0; row < data.num_rows(); ++row) {
    ASSERT_EQ(parallel.model.rules.Classify(data.Row(row)),
              sequential.rules.Classify(data.Row(row)));
  }
}

TEST(ParallelRsTest, DeterministicCompletionTime) {
  Dataset data = SmallBenchmark("diabetes", 300);
  NyuMinerOptions options;
  options.rs_trials = 4;
  ParallelExecOptions exec;
  exec.num_workers = 2;
  exec.seconds_per_work_unit = 1e-4;
  ParallelRsResult a = ParallelNyuMinerRS(data, data.AllRows(), options, exec);
  ParallelRsResult b = ParallelNyuMinerRS(data, data.AllRows(), options, exec);
  ASSERT_TRUE(a.ok);
  EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
}

}  // namespace
}  // namespace fpdm::classify
