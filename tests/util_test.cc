#include <algorithm>
#include <cmath>
#include <sstream>

#include "gtest/gtest.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace fpdm::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianHasRoughlyUnitVariance) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.NextGaussian());
  EXPECT_NEAR(Mean(xs), 0.0, 0.05);
  EXPECT_NEAR(StdDev(xs), 1.0, 0.05);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.Split();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(StatsTest, MeanAndStdDev) {
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(StdDev(xs), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(Min(xs), 2.0);
  EXPECT_DOUBLE_EQ(Max(xs), 9.0);
}

TEST(StatsTest, EmptyMeanIsZero) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

TEST(StatsTest, EntropyFromCounts) {
  EXPECT_DOUBLE_EQ(EntropyFromCounts({4, 4}), 1.0);
  EXPECT_DOUBLE_EQ(EntropyFromCounts({8, 0}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyFromCounts({}), 0.0);
  EXPECT_NEAR(EntropyFromCounts({1, 1, 1, 1}), 2.0, 1e-12);
}

TEST(TableTest, PrintsAlignedRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  std::ostringstream os;
  t.Print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| alpha"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
}

TEST(TableTest, Formatting) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatPercent(0.876, 1), "87.6%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

}  // namespace
}  // namespace fpdm::util
