#include <algorithm>
#include <set>

#include "arm/apriori.h"
#include "arm/problem.h"
#include "core/parallel.h"
#include "core/traversal.h"
#include "gtest/gtest.h"

namespace fpdm::arm {
namespace {

// The K-mart example of §2.2.1: pampers in 3 of 4 transactions, lipstick in
// 2 of the 3 pamper transactions.
TransactionDb KmartDb() {
  // items: 0=pamper 1=soap 2=lipstick 3=soda 4=candy 5=beer
  return {{0, 1, 2}, {0, 2, 3, 4}, {3, 5}, {0, 4, 5}};
}

std::set<Itemset> ItemsetsOf(const std::vector<FrequentItemset>& fs) {
  std::set<Itemset> out;
  for (const auto& f : fs) out.insert(f.items);
  return out;
}

// Exhaustive frequent-set reference.
std::vector<FrequentItemset> BruteForceFrequent(const TransactionDb& db,
                                                int min_support) {
  std::set<int> item_set;
  for (const auto& t : db) item_set.insert(t.begin(), t.end());
  std::vector<int> items(item_set.begin(), item_set.end());
  std::vector<FrequentItemset> result;
  const int n = static_cast<int>(items.size());
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    Itemset candidate;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) candidate.push_back(items[static_cast<size_t>(i)]);
    }
    const int support = CountSupport(db, candidate);
    if (support >= min_support) {
      result.push_back(FrequentItemset{candidate, support});
    }
  }
  return result;
}

TEST(AprioriTest, CountSupportMergeScan) {
  TransactionDb db = KmartDb();
  EXPECT_EQ(CountSupport(db, {0}), 3);
  EXPECT_EQ(CountSupport(db, {0, 2}), 2);
  EXPECT_EQ(CountSupport(db, {0, 5}), 1);
  EXPECT_EQ(CountSupport(db, {9}), 0);
  EXPECT_EQ(CountSupport(db, {}), 4);  // empty set in every transaction
}

TEST(AprioriTest, PaperExampleRule) {
  TransactionDb db = KmartDb();
  MiningStats stats;
  std::vector<FrequentItemset> frequent = Apriori(db, 2, &stats);
  EXPECT_TRUE(ItemsetsOf(frequent).count({0, 2}));
  std::vector<AssociationRule> rules = GenerateRules(frequent, 0.6, nullptr);
  // pamper -> lipstick holds with confidence 2/3.
  bool found = false;
  for (const auto& rule : rules) {
    if (rule.antecedent == Itemset{0} && rule.consequent == Itemset{2}) {
      found = true;
      EXPECT_NEAR(rule.confidence, 2.0 / 3.0, 1e-12);
      EXPECT_EQ(rule.support, 2);
    }
  }
  EXPECT_TRUE(found);
}

TEST(AprioriTest, MatchesBruteForce) {
  BasketConfig config;
  config.num_transactions = 120;
  config.num_items = 12;
  config.avg_transaction_size = 5;
  config.patterns = {{{1, 3, 5}, 0.4}, {{2, 7}, 0.5}};
  TransactionDb db = GenerateBaskets(config);
  for (int min_support : {10, 25, 50}) {
    std::vector<FrequentItemset> apriori = Apriori(db, min_support, nullptr);
    std::vector<FrequentItemset> brute = BruteForceFrequent(db, min_support);
    EXPECT_EQ(ItemsetsOf(apriori), ItemsetsOf(brute)) << min_support;
    for (const auto& f : apriori) {
      EXPECT_EQ(f.support, CountSupport(db, f.items));
    }
  }
}

TEST(AprioriTest, SubsetPruningFires) {
  BasketConfig config;
  config.num_transactions = 200;
  config.num_items = 20;
  config.patterns = {{{1, 2, 3, 4}, 0.3}};
  TransactionDb db = GenerateBaskets(config);
  MiningStats stats;
  Apriori(db, 20, &stats);
  EXPECT_GT(stats.candidates_generated, 0u);
  EXPECT_GT(stats.passes, 1);
}

TEST(PartitionTest, AgreesWithApriori) {
  BasketConfig config;
  config.num_transactions = 300;
  config.num_items = 15;
  config.patterns = {{{0, 5, 9}, 0.35}, {{2, 11}, 0.4}};
  config.seed = 77;
  TransactionDb db = GenerateBaskets(config);
  for (int partitions : {2, 3, 5}) {
    std::vector<FrequentItemset> a = Apriori(db, 30, nullptr);
    std::vector<FrequentItemset> p = Partition(db, 30, partitions, nullptr);
    EXPECT_EQ(ItemsetsOf(a), ItemsetsOf(p)) << partitions << " partitions";
  }
}

TEST(PartitionTest, SinglePartitionIsApriori) {
  TransactionDb db = KmartDb();
  EXPECT_EQ(ItemsetsOf(Apriori(db, 2, nullptr)),
            ItemsetsOf(Partition(db, 2, 1, nullptr)));
}

TEST(RuleGenTest, ConfidencePruningSound) {
  // Every rule from the brute-force set with conf >= threshold must appear.
  BasketConfig config;
  config.num_transactions = 100;
  config.num_items = 8;
  config.patterns = {{{1, 2, 3}, 0.5}};
  TransactionDb db = GenerateBaskets(config);
  std::vector<FrequentItemset> frequent = Apriori(db, 20, nullptr);
  std::vector<AssociationRule> rules = GenerateRules(frequent, 0.8, nullptr);
  // Reference: enumerate all (X, Y) partitions of every frequent set.
  size_t expected = 0;
  for (const auto& f : frequent) {
    if (f.items.size() < 2) continue;
    const int n = static_cast<int>(f.items.size());
    for (uint32_t mask = 1; mask + 1 < (1u << n); ++mask) {
      Itemset antecedent, consequent;
      for (int i = 0; i < n; ++i) {
        ((mask & (1u << i)) ? antecedent : consequent)
            .push_back(f.items[static_cast<size_t>(i)]);
      }
      const double conf = static_cast<double>(f.support) /
                          static_cast<double>(CountSupport(db, antecedent));
      if (conf >= 0.8) ++expected;
    }
  }
  EXPECT_EQ(rules.size(), expected);
  for (const auto& rule : rules) EXPECT_GE(rule.confidence, 0.8);
}

TEST(ItemsetProblemTest, EdagMatchesApriori) {
  BasketConfig config;
  config.num_transactions = 150;
  config.num_items = 10;
  config.patterns = {{{1, 4, 7}, 0.4}};
  TransactionDb db = GenerateBaskets(config);
  const int min_support = 25;
  ItemsetProblem problem(db, min_support);
  core::MiningResult result = core::EdagTraversal(problem);
  std::vector<FrequentItemset> via_edag =
      ItemsetProblem::ToFrequentItemsets(result);
  std::vector<FrequentItemset> via_apriori = Apriori(db, min_support, nullptr);
  EXPECT_EQ(ItemsetsOf(via_edag), ItemsetsOf(via_apriori));
  for (const auto& f : via_edag) {
    EXPECT_EQ(f.support, CountSupport(db, f.items));
  }
}

TEST(ItemsetProblemTest, EdagTestsSameCandidatesAsApriori) {
  // Theorem 1 in action: the E-dag visits exactly the apriori-gen surviving
  // candidates (level-wise, all-subsets-frequent).
  BasketConfig config;
  config.num_transactions = 150;
  config.num_items = 10;
  config.patterns = {{{1, 4, 7}, 0.4}, {{2, 5}, 0.5}};
  TransactionDb db = GenerateBaskets(config);
  ItemsetProblem problem(db, 25);
  core::MiningResult edag = core::EdagTraversal(problem);
  MiningStats stats;
  std::vector<FrequentItemset> frequent = Apriori(db, 25, &stats);
  // Apriori counts supports of L1 candidates (all items) plus surviving
  // candidates; the E-dag tests the same sets.
  std::set<int> items;
  for (const auto& t : db) items.insert(t.begin(), t.end());
  const size_t apriori_tested = items.size() + stats.candidates_generated -
                                stats.candidates_pruned_by_subset;
  EXPECT_EQ(edag.patterns_tested, apriori_tested);
}

TEST(ItemsetProblemTest, ParallelMiningCorrect) {
  BasketConfig config;
  config.num_transactions = 120;
  config.num_items = 9;
  config.patterns = {{{0, 3, 6}, 0.45}};
  TransactionDb db = GenerateBaskets(config);
  ItemsetProblem problem(db, 20);
  core::MiningResult sequential = core::EdagTraversal(problem);
  core::ParallelOptions options;
  options.strategy = core::Strategy::kLoadBalanced;
  options.num_workers = 3;
  core::ParallelResult parallel = core::MineParallel(problem, options);
  ASSERT_TRUE(parallel.ok);
  std::set<std::string> seq_keys, par_keys;
  for (const auto& gp : sequential.good_patterns) seq_keys.insert(gp.pattern.key);
  for (const auto& gp : parallel.mining.good_patterns) par_keys.insert(gp.pattern.key);
  EXPECT_EQ(seq_keys, par_keys);
}

TEST(BasketGenTest, DeterministicAndShaped) {
  BasketConfig config;
  config.num_transactions = 50;
  TransactionDb a = GenerateBaskets(config);
  TransactionDb b = GenerateBaskets(config);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 50u);
  for (const auto& t : a) {
    EXPECT_TRUE(std::is_sorted(t.begin(), t.end()));
    EXPECT_FALSE(t.empty());
  }
}

TEST(BasketGenTest, PlantedPatternIsFrequent) {
  BasketConfig config;
  config.num_transactions = 400;
  config.patterns = {{{3, 4, 5}, 0.5}};
  TransactionDb db = GenerateBaskets(config);
  EXPECT_GT(CountSupport(db, {3, 4, 5}), 150);
}

}  // namespace
}  // namespace fpdm::arm
