#include "classify/split.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "classify/impurity.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace fpdm::classify {
namespace {

Dataset TwoClassNumeric(const std::vector<std::pair<double, int>>& points) {
  Dataset data({Attribute{"x", AttrType::kNumeric, {}}}, {"neg", "pos"});
  for (const auto& [value, label] : points) data.AddRow({value}, label);
  return data;
}

TEST(ImpurityTest, GiniBasics) {
  EXPECT_DOUBLE_EQ(GiniImpurity({5, 5}), 0.5);
  EXPECT_DOUBLE_EQ(GiniImpurity({10, 0}), 0.0);
  EXPECT_DOUBLE_EQ(GiniImpurity({}), 0.0);
  EXPECT_NEAR(GiniImpurity({1, 1, 1, 1}), 0.75, 1e-12);
}

TEST(ImpurityTest, EntropyBasics) {
  EXPECT_DOUBLE_EQ(EntropyImpurity({5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(EntropyImpurity({10, 0}), 0.0);
  EXPECT_NEAR(EntropyImpurity({1, 1, 1, 1}), 2.0, 1e-12);
}

TEST(ImpurityTest, AggregateWeighting) {
  // Two branches: pure (4 rows) and uniform (4 rows): 0.5 * 0 + 0.5 * 0.5.
  EXPECT_DOUBLE_EQ(AggregateImpurity(GiniImpurity, {{4, 0}, {2, 2}}), 0.25);
}

TEST(ImpurityTest, ConcavityProperty) {
  // Definition 5(4): splitting never increases weighted impurity.
  util::Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    std::vector<double> a(3), b(3), merged(3);
    for (int c = 0; c < 3; ++c) {
      a[static_cast<size_t>(c)] = static_cast<double>(rng.NextBounded(20));
      b[static_cast<size_t>(c)] = static_cast<double>(rng.NextBounded(20));
      merged[static_cast<size_t>(c)] =
          a[static_cast<size_t>(c)] + b[static_cast<size_t>(c)];
    }
    double na = 0, nb = 0;
    for (double v : a) na += v;
    for (double v : b) nb += v;
    if (na + nb == 0) continue;
    for (const ImpurityFn& phi : {ImpurityFn(GiniImpurity), ImpurityFn(EntropyImpurity)}) {
      const double split_imp = AggregateImpurity(phi, {a, b});
      const double merged_imp = phi(merged);
      EXPECT_LE(split_imp, merged_imp + 1e-9);
    }
  }
}

TEST(BasketTest, BuildValueBasketsSortsAndCounts) {
  Dataset data = TwoClassNumeric({{3, 1}, {1, 0}, {3, 0}, {2, 0}, {1, 0}});
  std::vector<Basket> baskets = BuildValueBaskets(data, data.AllRows(), 0);
  ASSERT_EQ(baskets.size(), 3u);
  EXPECT_DOUBLE_EQ(baskets[0].lo, 1);
  EXPECT_DOUBLE_EQ(baskets[0].counts[0], 2);
  EXPECT_DOUBLE_EQ(baskets[2].counts[1], 1);
}

TEST(BasketTest, MissingValuesSkipped) {
  Dataset data({Attribute{"x", AttrType::kNumeric, {}}}, {"a", "b"});
  data.AddRow({1.0}, 0);
  data.AddRow({Dataset::kMissing}, 1);
  std::vector<Basket> baskets = BuildValueBaskets(data, data.AllRows(), 0);
  ASSERT_EQ(baskets.size(), 1u);
}

TEST(BasketTest, BoundaryMergeMatchesPaperExample) {
  // The 27 data elements of Figures 5.1-5.4: classes A=0, B=1, C=2.
  std::vector<std::pair<double, int>> points = {
      {0, 0}, {0, 0}, {0, 0}, {1, 0}, {1, 1}, {1, 1}, {1, 1}, {2, 1}, {2, 1},
      {3, 2}, {3, 2}, {3, 2}, {4, 1}, {4, 1}, {4, 1}, {4, 2}, {5, 0}, {5, 0},
      {6, 0}, {7, 2}, {7, 2}, {7, 2}, {8, 2}, {8, 2}, {9, 2}, {9, 2}, {9, 2}};
  Dataset data({Attribute{"x", AttrType::kNumeric, {}}}, {"A", "B", "C"});
  for (const auto& [v, c] : points) data.AddRow({v}, c);
  std::vector<Basket> baskets = BuildValueBaskets(data, data.AllRows(), 0);
  EXPECT_EQ(baskets.size(), 10u);  // Figure 5.2: 10 baskets
  std::vector<Basket> merged = MergeAtBoundaries(std::move(baskets));
  EXPECT_EQ(merged.size(), 7u);  // Figure 5.4: 7 baskets
  // Basket {5,6} is the merged A-run.
  EXPECT_DOUBLE_EQ(merged[5].lo, 5);
  EXPECT_DOUBLE_EQ(merged[5].hi, 6);
  EXPECT_DOUBLE_EQ(merged[5].counts[0], 3);
}

// Brute force: best partition of baskets into at most k contiguous runs.
double BruteForceOrdered(const std::vector<Basket>& baskets, int max_k,
                         const ImpurityFn& phi, int* best_branches) {
  const int b = static_cast<int>(baskets.size());
  double best = std::numeric_limits<double>::infinity();
  *best_branches = 1;
  // Enumerate cut masks over b-1 gaps.
  for (uint32_t mask = 0; mask < (1u << (b - 1)); ++mask) {
    const int cuts = __builtin_popcount(mask);
    if (cuts + 1 > max_k) continue;
    std::vector<std::vector<double>> groups;
    groups.push_back(baskets[0].counts);
    for (int i = 1; i < b; ++i) {
      if (mask & (1u << (i - 1))) {
        groups.push_back(baskets[static_cast<size_t>(i)].counts);
      } else {
        for (size_t c = 0; c < groups.back().size(); ++c) {
          groups.back()[c] += baskets[static_cast<size_t>(i)].counts[c];
        }
      }
    }
    const double imp = AggregateImpurity(phi, groups);
    if (imp < best - 1e-12 ||
        (imp < best + 1e-12 && cuts + 1 < *best_branches)) {
      best = imp;
      *best_branches = cuts + 1;
    }
  }
  return best;
}

TEST(OptimalPartitionTest, MatchesBruteForceRandomized) {
  util::Rng rng(2024);
  for (int round = 0; round < 60; ++round) {
    const int b = static_cast<int>(rng.NextInt(2, 9));
    const int classes = static_cast<int>(rng.NextInt(2, 4));
    const int k = static_cast<int>(rng.NextInt(2, 5));
    std::vector<Basket> baskets;
    for (int i = 0; i < b; ++i) {
      Basket basket;
      basket.lo = basket.hi = i;
      for (int c = 0; c < classes; ++c) {
        basket.counts.push_back(static_cast<double>(rng.NextBounded(6)));
      }
      bool empty = true;
      for (double v : basket.counts) empty &= v == 0;
      if (empty) basket.counts[0] = 1;
      baskets.push_back(std::move(basket));
    }
    for (const ImpurityFn& phi : {ImpurityFn(GiniImpurity), ImpurityFn(EntropyImpurity)}) {
      int brute_branches = 0;
      const double brute = BruteForceOrdered(baskets, k, phi, &brute_branches);
      OrderedPartition dp = OptimalOrderedPartition(baskets, k, phi, nullptr);
      ASSERT_NEAR(dp.impurity, brute, 1e-9) << "round " << round;
      ASSERT_EQ(static_cast<int>(dp.cuts_after.size()) + 1, brute_branches)
          << "round " << round;
    }
  }
}

// Theorem 5: merging at boundary points loses no optimal split.
TEST(OptimalPartitionTest, BoundaryMergePreservesOptimum) {
  util::Rng rng(777);
  for (int round = 0; round < 40; ++round) {
    const int b = static_cast<int>(rng.NextInt(3, 12));
    std::vector<Basket> baskets;
    for (int i = 0; i < b; ++i) {
      Basket basket;
      basket.lo = basket.hi = i;
      // Bias toward pure baskets so merging actually happens.
      if (rng.NextBool(0.6)) {
        basket.counts = {0, 0};
        basket.counts[rng.NextBounded(2)] = static_cast<double>(rng.NextInt(1, 5));
      } else {
        basket.counts = {static_cast<double>(rng.NextInt(1, 5)),
                         static_cast<double>(rng.NextInt(1, 5))};
      }
      baskets.push_back(std::move(basket));
    }
    std::vector<Basket> merged = MergeAtBoundaries(baskets);
    for (int k = 2; k <= 4; ++k) {
      OrderedPartition raw =
          OptimalOrderedPartition(baskets, k, GiniImpurity, nullptr);
      OrderedPartition reduced =
          OptimalOrderedPartition(merged, k, GiniImpurity, nullptr);
      ASSERT_NEAR(raw.impurity, reduced.impurity, 1e-9)
          << "round " << round << " k " << k;
    }
  }
}

TEST(NyuSplitTest, PerfectThreeWaySplitFound) {
  // Classes occupy three clean value ranges: a 3-way split is pure.
  Dataset data({Attribute{"x", AttrType::kNumeric, {}}}, {"a", "b", "c"});
  for (int i = 0; i < 10; ++i) data.AddRow({static_cast<double>(i)}, 0);
  for (int i = 10; i < 20; ++i) data.AddRow({static_cast<double>(i)}, 1);
  for (int i = 20; i < 30; ++i) data.AddRow({static_cast<double>(i)}, 2);
  NyuSplitterOptions options;
  options.max_branches = 4;
  std::optional<Split> split =
      NyuOptimalSplitForAttribute(data, data.AllRows(), 0, options, nullptr);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->num_branches(), 3);  // fewest branches among optimal
  EXPECT_NEAR(split->impurity, 0.0, 1e-12);
  EXPECT_EQ(split->BranchOf(5), 0);
  EXPECT_EQ(split->BranchOf(15), 1);
  EXPECT_EQ(split->BranchOf(25), 2);
}

TEST(NyuSplitTest, RespectsMaxBranches) {
  Dataset data({Attribute{"x", AttrType::kNumeric, {}}}, {"a", "b", "c"});
  for (int i = 0; i < 9; ++i) {
    data.AddRow({static_cast<double>(i)}, i % 3);
    data.AddRow({static_cast<double>(i)}, i % 3);
  }
  NyuSplitterOptions options;
  options.max_branches = 2;
  std::optional<Split> split =
      NyuOptimalSplitForAttribute(data, data.AllRows(), 0, options, nullptr);
  ASSERT_TRUE(split.has_value());
  EXPECT_LE(split->num_branches(), 2);
}

TEST(NyuSplitTest, MissingValueGoesToDefaultBranch) {
  Dataset data({Attribute{"x", AttrType::kNumeric, {}}}, {"a", "b"});
  for (int i = 0; i < 8; ++i) data.AddRow({static_cast<double>(i)}, i < 4 ? 0 : 1);
  NyuSplitterOptions options;
  std::optional<Split> split =
      NyuOptimalSplitForAttribute(data, data.AllRows(), 0, options, nullptr);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->BranchOf(Dataset::kMissing), split->default_branch);
}

// Exhaustive check of categorical optimality: every partition of the values
// into at most K groups.
double BruteForceCategorical(const Dataset& data, const std::vector<int>& rows,
                             int attribute, int max_k, const ImpurityFn& phi) {
  const int card =
      static_cast<int>(data.attribute(attribute).categories.size());
  const size_t classes = static_cast<size_t>(data.num_classes());
  std::vector<std::vector<double>> per_value(
      static_cast<size_t>(card), std::vector<double>(classes, 0.0));
  for (int row : rows) {
    const double v = data.Value(row, attribute);
    if (Dataset::IsMissingValue(v)) continue;
    ++per_value[static_cast<size_t>(v)][static_cast<size_t>(data.Label(row))];
  }
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> assign(static_cast<size_t>(card), 0);
  std::function<void(int, int)> recurse = [&](int v, int groups) {
    if (v == card) {
      std::vector<std::vector<double>> branch(static_cast<size_t>(groups),
                                              std::vector<double>(classes, 0));
      for (int i = 0; i < card; ++i) {
        for (size_t c = 0; c < classes; ++c) {
          branch[static_cast<size_t>(assign[static_cast<size_t>(i)])][c] +=
              per_value[static_cast<size_t>(i)][c];
        }
      }
      if (groups >= 2) best = std::min(best, AggregateImpurity(phi, branch));
      return;
    }
    for (int g = 0; g < std::min(groups + 1, max_k); ++g) {
      assign[static_cast<size_t>(v)] = g;
      recurse(v + 1, std::max(groups, g + 1));
    }
  };
  recurse(0, 0);
  return best;
}

TEST(NyuSplitTest, CategoricalMatchesExhaustiveSearch) {
  util::Rng rng(31337);
  for (int round = 0; round < 25; ++round) {
    const int card = static_cast<int>(rng.NextInt(3, 5));
    const int classes = static_cast<int>(rng.NextInt(2, 3));
    Attribute attr;
    attr.name = "c";
    attr.type = AttrType::kCategorical;
    for (int v = 0; v < card; ++v) attr.categories.push_back("v");
    std::vector<std::string> class_names;
    for (int c = 0; c < classes; ++c) class_names.push_back("k");
    Dataset data({attr}, class_names);
    const int rows = static_cast<int>(rng.NextInt(20, 60));
    for (int r = 0; r < rows; ++r) {
      data.AddRow({static_cast<double>(rng.NextBounded(
                      static_cast<uint64_t>(card)))},
                  static_cast<int>(rng.NextBounded(
                      static_cast<uint64_t>(classes))));
    }
    NyuSplitterOptions options;
    options.max_branches = 3;
    std::optional<Split> split = NyuOptimalSplitForAttribute(
        data, data.AllRows(), 0, options, nullptr);
    const double brute =
        BruteForceCategorical(data, data.AllRows(), 0, 3, options.impurity);
    if (!split.has_value()) {
      // No useful split found; brute force must agree there is no gain, or
      // the data was single-valued.
      continue;
    }
    ASSERT_NEAR(split->impurity, brute, 1e-9) << "round " << round;
  }
}

TEST(NyuSplitTest, CategoricalLogicalValueMergeKeepsPureValuesTogether) {
  // Values 0,1 are pure class 0; values 2,3 pure class 1. The optimal
  // 2-way split must group them by class.
  Attribute attr{"c", AttrType::kCategorical, {"a", "b", "c", "d"}};
  Dataset data({attr}, {"x", "y"});
  for (int i = 0; i < 5; ++i) {
    data.AddRow({0.0}, 0);
    data.AddRow({1.0}, 0);
    data.AddRow({2.0}, 1);
    data.AddRow({3.0}, 1);
  }
  NyuSplitterOptions options;
  options.max_branches = 4;
  std::optional<Split> split =
      NyuOptimalSplitForAttribute(data, data.AllRows(), 0, options, nullptr);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->num_branches(), 2);
  EXPECT_NEAR(split->impurity, 0.0, 1e-12);
  EXPECT_EQ(split->BranchOf(0), split->BranchOf(1));
  EXPECT_EQ(split->BranchOf(2), split->BranchOf(3));
  EXPECT_NE(split->BranchOf(0), split->BranchOf(2));
}

TEST(NyuSplitTest, WorksWithCustomImpurity) {
  // A valid custom impurity (squared-error style): min(p, 1-p) scaled.
  ImpurityFn custom = [](const std::vector<double>& counts) {
    double total = 0, max = 0;
    for (double c : counts) {
      total += c;
      max = std::max(max, c);
    }
    return total > 0 ? (total - max) / total : 0.0;
  };
  Dataset data = TwoClassNumeric(
      {{1, 0}, {2, 0}, {3, 0}, {4, 1}, {5, 1}, {6, 1}, {7, 0}, {8, 0}});
  NyuSplitterOptions options;
  options.impurity = custom;
  options.max_branches = 3;
  std::optional<Split> split =
      NyuOptimalSplitForAttribute(data, data.AllRows(), 0, options, nullptr);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->num_branches(), 3);
  EXPECT_NEAR(split->impurity, 0.0, 1e-12);
}

TEST(NyuSplitTest, SubKaryBeatsRepeatedBinary) {
  // §5.1's motivation: an optimal 3-way split can beat composing two
  // optimal binary splits at the same node. At minimum, the sub-K impurity
  // is never worse than the binary one.
  util::Rng rng(4711);
  int strictly_better = 0;
  for (int round = 0; round < 30; ++round) {
    Dataset data({Attribute{"x", AttrType::kNumeric, {}}}, {"a", "b", "c"});
    for (int r = 0; r < 60; ++r) {
      data.AddRow({static_cast<double>(rng.NextBounded(10))},
                  static_cast<int>(rng.NextBounded(3)));
    }
    NyuSplitterOptions binary;
    binary.max_branches = 2;
    NyuSplitterOptions multi;
    multi.max_branches = 4;
    auto s2 = NyuOptimalSplitForAttribute(data, data.AllRows(), 0, binary, nullptr);
    auto sk = NyuOptimalSplitForAttribute(data, data.AllRows(), 0, multi, nullptr);
    if (!s2 || !sk) continue;
    EXPECT_LE(sk->impurity, s2->impurity + 1e-9);
    strictly_better += sk->impurity < s2->impurity - 1e-9 ? 1 : 0;
  }
  EXPECT_GT(strictly_better, 5);  // the advantage is real, not incidental
}

TEST(NyuSplitTest, WorkCounterAccumulates) {
  Dataset data = TwoClassNumeric({{1, 0}, {2, 1}, {3, 0}, {4, 1}, {5, 0}});
  double work = 0;
  NyuOptimalSplitForAttribute(data, data.AllRows(), 0, NyuSplitterOptions{},
                              &work);
  EXPECT_GT(work, 0);
}

TEST(NyuSplitTest, SplitterPicksBestAttribute) {
  // Attribute 1 separates perfectly; attribute 0 is noise.
  Dataset data({Attribute{"noise", AttrType::kNumeric, {}},
                Attribute{"signal", AttrType::kNumeric, {}}},
               {"a", "b"});
  util::Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const int label = i % 2;
    data.AddRow({static_cast<double>(rng.NextBounded(10)),
                 static_cast<double>(label * 10 + static_cast<int>(rng.NextBounded(3)))},
                label);
  }
  Splitter splitter = MakeNyuSplitter(NyuSplitterOptions{});
  std::optional<Split> split = splitter(data, data.AllRows(), nullptr);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->attribute, 1);
  EXPECT_NEAR(split->impurity, 0.0, 1e-12);
}

}  // namespace
}  // namespace fpdm::classify
