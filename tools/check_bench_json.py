#!/usr/bin/env python3
"""Sanity-checks Google Benchmark JSON output.

CI's bench-smoke job runs the benchmark binaries with --quick and feeds the
resulting JSONs through this script. The numbers themselves are noise at
smoke timings; what this guards is the *shape* of the output — that every
benchmark actually ran, reported a real_time, and that the scaling rows
carry the hw_threads counter the analysis scripts key on.

Usage: check_bench_json.py BENCH_micro.json BENCH_scaling.json ...
Exits non-zero with a per-file message on the first malformed file.
"""

import json
import sys


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    sys.exit(1)


def check_context(path, context):
    """Rejects bench JSON measured on a debug or sanitized build.

    Timings from an unoptimized or sanitizer-instrumented libfpdm are not
    comparable to release numbers, so they must never land in the committed
    BENCH_*.json files. tools/run_benches.sh stamps fpdm_build_type /
    fpdm_sanitize / git_sha into the context; files without the stamp
    (hand-run binaries, pre-stamp files) are rejected too. Google
    Benchmark's own library_build_type is NOT consulted: it describes the
    prebuilt libbenchmark package, not this tree's code generation.
    """
    if not isinstance(context, dict):
        fail(path, "missing benchmark 'context'")
    build_type = context.get("fpdm_build_type")
    if not isinstance(build_type, str) or not build_type:
        fail(path, "context lacks fpdm_build_type — regenerate with "
                   "tools/run_benches.sh on a release build")
    if build_type.lower() in ("debug", "unknown", ""):
        fail(path, f"fpdm_build_type is '{build_type}' — benchmark numbers "
                   "from a debug build are not meaningful")
    sanitize = context.get("fpdm_sanitize")
    if sanitize not in (None, "", "none"):
        fail(path, f"fpdm_sanitize is '{sanitize}' — benchmark numbers from "
                   "a sanitized build are not meaningful")
    git_sha = context.get("git_sha")
    if not isinstance(git_sha, str) or not git_sha or git_sha == "unknown":
        fail(path, "context lacks git_sha — regenerate with "
                   "tools/run_benches.sh inside the git checkout")


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"unreadable or invalid JSON: {e}")

    if not isinstance(doc, dict) or "benchmarks" not in doc:
        fail(path, "missing top-level 'benchmarks' key")
    check_context(path, doc.get("context"))
    benchmarks = doc["benchmarks"]
    if not isinstance(benchmarks, list) or not benchmarks:
        fail(path, "'benchmarks' is empty — no benchmark ran")

    for i, bench in enumerate(benchmarks):
        if not isinstance(bench, dict):
            fail(path, f"benchmarks[{i}] is not an object")
        name = bench.get("name")
        if not isinstance(name, str) or not name:
            fail(path, f"benchmarks[{i}] has no 'name'")
        # Error rows (SkipWithError) have no timings; surface them loudly
        # instead of letting a failed benchmark pass the smoke check.
        if bench.get("error_occurred"):
            fail(path, f"{name}: error_occurred: {bench.get('error_message')}")
        real_time = bench.get("real_time")
        if not isinstance(real_time, (int, float)) or real_time < 0:
            fail(path, f"{name}: missing or non-numeric 'real_time'")
        # Scaling rows must carry the hw_threads counter: the speedup curve
        # is only interpretable relative to the cores the host exposes.
        if name.startswith("BM_Scaling"):
            hw_threads = bench.get("hw_threads")
            if not isinstance(hw_threads, (int, float)) or hw_threads <= 0:
                fail(path, f"{name}: missing 'hw_threads' counter")

    print(f"{path}: ok ({len(benchmarks)} benchmark rows)")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        check_file(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
