#!/usr/bin/env python3
"""Gates a fresh bench JSON against a committed baseline.

CI's bench-smoke job runs the benchmark suites with --quick into a temp
dir, then feeds the results through this script next to the committed
BENCH_*.json files: any benchmark whose per-iteration real_time regressed
by more than the allowed factor (default 2x) fails the job. The wide
factor absorbs shared-runner noise and the --quick timings; what it
catches is the order-of-magnitude class of regression — an accidentally
quadratic loop, a lost fast path, a round-trip-per-op protocol slip.

Benchmarks present on only one side are reported but never fail the gate:
rows absent from the committed baseline are listed as "new" (they land
before their baseline exists — e.g. a fresh multi-server series), and
retired ones leave stale baseline rows behind. A run where every current
row is new passes: there is nothing to gate on yet.

Usage: compare_bench_json.py BASELINE CURRENT [--max-ratio N]
Exits non-zero listing every regressed row.
"""

import argparse
import json
import sys

# google-benchmark reports real_time in the row's time_unit.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_rows(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: unreadable or invalid JSON: {e}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name")
        real_time = bench.get("real_time")
        unit = bench.get("time_unit", "ns")
        if not isinstance(name, str) or not isinstance(real_time, (int, float)):
            continue
        if bench.get("error_occurred"):
            continue
        rows[name] = float(real_time) * _UNIT_NS.get(unit, 1.0)
    return rows


def main():
    parser = argparse.ArgumentParser(
        description="Fail on >max-ratio real_time regressions vs a baseline")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="largest tolerated current/baseline real_time "
                             "ratio (default: 2.0)")
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)
    if not baseline:
        print(f"{args.baseline}: no baseline rows — nothing to gate on",
              file=sys.stderr)
        return 2
    if not current:
        print(f"{args.current}: no benchmark rows ran", file=sys.stderr)
        return 2

    regressions = []
    compared = 0
    for name, base_ns in sorted(baseline.items()):
        if name not in current:
            print(f"note: {name} only in baseline (retired?)")
            continue
        cur_ns = current[name]
        compared += 1
        if base_ns <= 0:
            continue
        ratio = cur_ns / base_ns
        marker = "REGRESSION" if ratio > args.max_ratio else "ok"
        print(f"{marker:>10}  {ratio:6.2f}x  {name}")
        if ratio > args.max_ratio:
            regressions.append((name, ratio))
    new_rows = sorted(set(current) - set(baseline))
    for name in new_rows:
        print(f"{'new':>10}  {'':>8}  {name}  (no baseline yet)")

    if compared == 0:
        if new_rows:
            print(f"\nall {len(new_rows)} current benchmark(s) are new — "
                  "no baseline rows to gate on; refresh the committed "
                  "baseline to start gating them")
            return 0
        print("no benchmark names overlap between baseline and current",
              file=sys.stderr)
        return 2
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{args.max_ratio}x:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\nall {compared} compared benchmarks within "
          f"{args.max_ratio}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
