#!/usr/bin/env bash
# Builds the benchmark binaries and refreshes the benchmark JSONs:
#   BENCH_micro.json   — primitive micro-benchmarks (bench_micro)
#   BENCH_scaling.json — kRealParallel / kDistributed wall-clock scaling vs
#                        worker count, plus the multi-server shard-placement
#                        series (BM_ScalingDistributedApriori/<workers>/<servers>
#                        sweeps 1/2/4 shard servers at the largest fleet)
#                        and the server-saturation series
#                        (BM_ServerSaturation/<clients>/<server-threads>,
#                        items/s + p99 + WAL group-commit counters; the
#                        speedup curves are only visible on a multicore
#                        host — check the hw_threads counter)
# Usage: tools/run_benches.sh [--quick] [build-dir] [out-dir]
#   --quick    shrink per-benchmark min time for a CI smoke run; the numbers
#              are noisy and only prove the binaries run end to end
#   build-dir  CMake build directory (default: <repo>/build)
#   out-dir    where the JSONs are written (default: the repo root, i.e. the
#              committed files; CI points this at a temp dir)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

quick=0
if [[ "${1:-}" == "--quick" ]]; then
  quick=1
  shift
fi
build_dir="${1:-$repo_root/build}"
out_dir="${2:-$repo_root}"

cmake -B "$build_dir" -S "$repo_root"

# Benchmark numbers from a sanitized build are meaningless (TSan/ASan add
# multi-x slowdowns) and would silently poison the committed JSONs, so
# refuse the build dir outright instead of producing garbage.
sanitize="$(grep -E '^FPDM_SANITIZE:' "$build_dir/CMakeCache.txt" \
  | head -n1 | cut -d= -f2- || true)"
if [[ -n "$sanitize" ]]; then
  echo "error: $build_dir is configured with FPDM_SANITIZE=$sanitize;" >&2
  echo "benchmark numbers from a sanitized build are not meaningful." >&2
  echo "Use a plain build dir (or reconfigure with -DFPDM_SANITIZE=)." >&2
  exit 1
fi

cmake --build "$build_dir" -j --target bench_micro bench_scaling

# Stamp the JSON context with OUR library's build configuration and the
# commit the numbers were measured at. Google Benchmark's own
# library_build_type describes the prebuilt libbenchmark (often a debug
# package), not this tree; fpdm_build_type is what check_bench_json.py
# keys on, and git_sha ties committed BENCH_*.json files to a revision.
build_type="$(grep -E '^CMAKE_BUILD_TYPE:' "$build_dir/CMakeCache.txt" \
  | head -n1 | cut -d= -f2- || true)"
git_sha="$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)"
context="fpdm_build_type=${build_type:-unknown}"
context+=",fpdm_sanitize=none,git_sha=$git_sha"

mkdir -p "$out_dir"
extra_args=(--benchmark_context="$context")
if [[ "$quick" == 1 ]]; then
  extra_args+=(--benchmark_min_time=0.01)
fi

"$build_dir/bench/bench_micro" \
  --benchmark_out="$out_dir/BENCH_micro.json" \
  --benchmark_out_format=json \
  "${extra_args[@]+"${extra_args[@]}"}"
"$build_dir/bench/bench_scaling" \
  --benchmark_out="$out_dir/BENCH_scaling.json" \
  --benchmark_out_format=json \
  "${extra_args[@]+"${extra_args[@]}"}"

echo "wrote $out_dir/BENCH_micro.json and $out_dir/BENCH_scaling.json"
