#!/usr/bin/env bash
# Builds the benchmark binaries and refreshes the committed benchmark
# JSONs at the repo root:
#   BENCH_micro.json   — primitive micro-benchmarks (bench_micro)
#   BENCH_scaling.json — kRealParallel wall-clock scaling vs worker count
#                        (bench_scaling; the speedup curve is only visible
#                        on a multicore host — check the hw_threads counter)
# Usage: tools/run_benches.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j --target bench_micro bench_scaling

"$build_dir/bench/bench_micro" \
  --benchmark_out="$repo_root/BENCH_micro.json" \
  --benchmark_out_format=json
"$build_dir/bench/bench_scaling" \
  --benchmark_out="$repo_root/BENCH_scaling.json" \
  --benchmark_out_format=json

echo "wrote $repo_root/BENCH_micro.json and $repo_root/BENCH_scaling.json"
